"""Line segment rasterization (OpenGL spec rules, paper section 2.2.2).

Two rasterizers:

* :func:`rasterize_line_basic` - the *diamond-exit* rule.  A pixel is colored
  when the segment intersects the open diamond ``R_f`` around the pixel
  center and the segment's end point is not inside that diamond.  As the
  paper illustrates (Figure 3d), short or unluckily placed segments can
  simply disappear - which is exactly why the hardware test cannot use basic
  lines.
* :func:`rasterize_line_aa_conservative` - anti-aliased lines with blending
  disabled.  The OpenGL spec defines the AA footprint as the bounding
  rectangle of the segment with width ``w`` (two edges parallel to the
  segment at distance ``w/2``, two perpendicular edges through the end
  points); every pixel with non-zero coverage is touched.  With blending
  disabled the alpha is ignored and the pixel receives the full line color
  (Figure 4d), which gives the guarantee Algorithm 3.1 relies on: *every
  pixel whose cell intersects the rectangle is colored*.  The paper uses
  width sqrt(2) (the pixel diagonal) for intersection tests and
  Equation (1)'s widened lines for distance tests.

The conservative rasterizer implements an exact separating-axis test between
the oriented rectangle and each pixel cell, vectorized over the rectangle's
bounding box, so the cost is proportional to the bounding-box pixel count -
the same scaling a hardware rasterizer exhibits.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from .raster_point import point_conservative_range, rasterize_point_conservative

#: Slack added to every coverage comparison.  Rounding in the unit-vector
#: computation can push an exact boundary touch (rect corner on cell corner)
#: one ulp past the closed-inequality limit; inflating the footprint by a
#: hair keeps the rasterization conservative under floating point.  Extra
#: pixels only ever add false *positives*, which the software step resolves.
COVERAGE_EPS = 1e-7


def _l1_distance_point_to_segment(
    cx: float, cy: float, x0: float, y0: float, x1: float, y1: float
) -> float:
    """Minimum L1 (Manhattan) distance from ``(cx, cy)`` to segment.

    The L1 distance along the segment is piecewise linear in the parameter t,
    so the minimum is attained at t in {0, 1} or where the segment crosses
    the vertical/horizontal lines through the center.
    """
    dx = x1 - x0
    dy = y1 - y0
    candidates = [0.0, 1.0]
    if dx != 0.0:
        candidates.append((cx - x0) / dx)
    if dy != 0.0:
        candidates.append((cy - y0) / dy)
    best = math.inf
    for t in candidates:
        if t < 0.0:
            t = 0.0
        elif t > 1.0:
            t = 1.0
        d = abs(x0 + t * dx - cx) + abs(y0 + t * dy - cy)
        if d < best:
            best = d
    return best


def rasterize_line_basic(
    buffer: np.ndarray,
    x0: float,
    y0: float,
    x1: float,
    y1: float,
    color: float = 1.0,
) -> int:
    """Diamond-exit-rule rasterization of segment ``(x0,y0)-(x1,y1)``.

    Returns the number of pixels written.  Following the spec: pixel ``f`` is
    produced iff the segment intersects the open diamond ``R_f`` and the end
    point ``(x1, y1)`` does not lie inside ``R_f`` (the segment must *exit*
    the diamond).
    """
    height, width = buffer.shape
    i0 = max(math.floor(min(x0, x1)) - 1, 0)
    i1 = min(math.floor(max(x0, x1)) + 1, width - 1)
    j0 = max(math.floor(min(y0, y1)) - 1, 0)
    j1 = min(math.floor(max(y0, y1)) + 1, height - 1)
    written = 0
    for j in range(j0, j1 + 1):
        cy = j + 0.5
        for i in range(i0, i1 + 1):
            cx = i + 0.5
            if _l1_distance_point_to_segment(cx, cy, x0, y0, x1, y1) >= 0.5:
                continue  # segment misses the open diamond
            if abs(x1 - cx) + abs(y1 - cy) < 0.5:
                continue  # end point inside the diamond: no exit, no pixel
            buffer[j, i] = color
            written += 1
    return written


def aa_rect_axes(
    x0: float, y0: float, x1: float, y1: float
) -> Tuple[float, float, float, float, float, float, float]:
    """Midpoint, unit axes, and half-length of the AA bounding rectangle.

    Returns ``(mx, my, ux, uy, vx, vy, half_len)`` where ``u`` points along
    the segment and ``v`` is its left normal.  Degenerate segments raise; the
    caller must handle them as points.
    """
    dx = x1 - x0
    dy = y1 - y0
    length = math.hypot(dx, dy)
    if length == 0.0:
        raise ValueError("degenerate segment has no direction")
    ux = dx / length
    uy = dy / length
    return ((x0 + x1) * 0.5, (y0 + y1) * 0.5, ux, uy, -uy, ux, length * 0.5)


def rasterize_line_aa_conservative(
    buffer: np.ndarray,
    x0: float,
    y0: float,
    x1: float,
    y1: float,
    width_px: float = math.sqrt(2.0),
    color: float = 1.0,
    cap_points: bool = False,
) -> int:
    """Anti-aliased line with blending disabled: conservative footprint.

    Colors every pixel whose (closed) unit cell intersects the width-``w``
    bounding rectangle of the segment.  When ``cap_points`` is set, square
    end-point caps of side ``width_px`` are added (the PointWidth rendering
    of the distance test, Figure 6), turning the footprint into a superset of
    the capsule of radius ``width_px / 2`` around the segment.

    Returns the number of *distinct* pixels written.  Pixels covered by
    both the rectangle and a cap (or by both caps) count once - the same
    set semantics as the mask-based bulk path, so serial and bulk
    ``pixels_written`` accounting agree per edge.
    """
    if width_px <= 0.0:
        raise ValueError("line width must be positive")
    height, buf_width = buffer.shape
    if x0 == x1 and y0 == y1:
        return rasterize_point_conservative(buffer, x0, y0, width_px, color)

    mx, my, ux, uy, vx, vy, hu = aa_rect_axes(x0, y0, x1, y1)
    hv = width_px * 0.5

    # Bounding box of the oriented rectangle, padded by the cell half-extent.
    ext_x = hu * abs(ux) + hv * abs(vx)
    ext_y = hu * abs(uy) + hv * abs(vy)
    i0 = max(math.floor(mx - ext_x - 0.5), 0)
    i1 = min(math.floor(mx + ext_x + 0.5), buf_width - 1)
    j0 = max(math.floor(my - ext_y - 0.5), 0)
    j1 = min(math.floor(my + ext_y + 0.5), height - 1)
    mask = None
    if i0 <= i1 and j0 <= j1:
        # Separating-axis test between the oriented rectangle and each cell,
        # vectorized over the bounding box.  Cell centers are (i+0.5, j+0.5)
        # with half-extent 0.5 on both axes.
        cx = np.arange(i0, i1 + 1, dtype=np.float64) + 0.5 - mx
        cy = np.arange(j0, j1 + 1, dtype=np.float64) + 0.5 - my
        gx, gy = np.meshgrid(cx, cy)
        cell_u = 0.5 * (abs(ux) + abs(uy))
        cell_v = 0.5 * (abs(vx) + abs(vy))
        mask = (
            (np.abs(gx) <= ext_x + 0.5 + COVERAGE_EPS)
            & (np.abs(gy) <= ext_y + 0.5 + COVERAGE_EPS)
            & (np.abs(gx * ux + gy * uy) <= hu + cell_u + COVERAGE_EPS)
            & (np.abs(gx * vx + gy * vy) <= hv + cell_v + COVERAGE_EPS)
        )
        if mask.any():
            view = buffer[j0 : j1 + 1, i0 : i1 + 1]
            view[mask] = color
    if not cap_points:
        return int(mask.sum()) if mask is not None else 0

    # Caps overlap the rectangle (and, for short segments, each other);
    # summing per-region counts would inflate pixels_written versus the
    # mask-based bulk path.  Paint everything into a boolean scratch over
    # the union bounding box and count distinct pixels once.
    cap_ranges = [
        rng
        for rng in (
            point_conservative_range(buffer.shape, x0, y0, width_px),
            point_conservative_range(buffer.shape, x1, y1, width_px),
        )
        if rng is not None
    ]
    for ci0, ci1, cj0, cj1 in cap_ranges:
        buffer[cj0 : cj1 + 1, ci0 : ci1 + 1] = color
    regions = list(cap_ranges)
    if mask is not None:
        regions.append((i0, i1, j0, j1))
    if not regions:
        return 0
    lo_i = min(r[0] for r in regions)
    hi_i = max(r[1] for r in regions)
    lo_j = min(r[2] for r in regions)
    hi_j = max(r[3] for r in regions)
    covered = np.zeros((hi_j - lo_j + 1, hi_i - lo_i + 1), dtype=bool)
    if mask is not None:
        covered[j0 - lo_j : j1 + 1 - lo_j, i0 - lo_i : i1 + 1 - lo_i] |= mask
    for ci0, ci1, cj0, cj1 in cap_ranges:
        covered[cj0 - lo_j : cj1 + 1 - lo_j, ci0 - lo_i : ci1 + 1 - lo_i] = True
    return int(np.count_nonzero(covered))
