"""Filled polygon rasterization (OpenGL spec rules, paper section 2.2.3).

The spec's two polygon rules, which this scanline implementation follows:

1. a pixel is colored only when its center lies inside the polygon;
2. a pixel whose center lies exactly on a shared edge of two polygons is
   colored exactly once.

Rule 2 is obtained with the standard half-open crossing convention: an edge
spanning ``[ymin, ymax)`` contributes a crossing, and fill spans are
half-open ``[x_enter, x_exit)`` in pixel-center space, so abutting polygons
tile without double-writing or gaps.

The paper deliberately avoids filled polygons in the hardware test (concave
polygons would need software triangulation - the motivating observation of
section 3); this rasterizer exists because the substrate is a *general*
OpenGL simulation: the interior filter's tile visualization, the examples,
and several tests use it, and it documents what the technique avoids.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np


def scanline_row_bounds(ymin: float, ymax: float, height: int) -> Tuple[int, int]:
    """Tight clipped row range whose scanlines a fill can cross.

    A scanline ``yc = j + 0.5`` can carry a crossing only when
    ``ymin <= yc < ymax`` (the half-open crossing rule), so the tight row
    range is ``ceil(ymin - 0.5) .. floor(ymax - 0.5)``, with the upper
    bound stepped down once when ``ymax - 0.5`` lands exactly on a row
    (``yc == ymax`` is excluded by the half-open rule).  The historical
    bounds used ``floor`` below and a spurious ``+1`` above, scanning up
    to two guaranteed-empty rows per polygon per draw.  Returns an
    inclusive ``(j_min, j_max)``; empty when ``j_min > j_max``.
    """
    j_min = max(math.ceil(ymin - 0.5), 0)
    top = ymax - 0.5
    j_max = math.floor(top)
    if j_max == top:  # yc would equal ymax exactly: excluded, step down
        j_max -= 1
    return j_min, min(j_max, height - 1)


def rasterize_polygon_evenodd(
    buffer: np.ndarray,
    vertices: Sequence[Tuple[float, float]],
    color: float = 1.0,
) -> int:
    """Fill a polygon given by window-space ``(x, y)`` vertices.

    Uses the even-odd rule, which is also how non-simple GIS rings are
    conventionally interpreted.  Returns the number of pixels written.
    """
    n = len(vertices)
    if n < 3:
        raise ValueError("polygon needs at least 3 vertices")
    height, width = buffer.shape

    xs = np.array([v[0] for v in vertices], dtype=np.float64)
    ys = np.array([v[1] for v in vertices], dtype=np.float64)
    x0s, y0s = xs, ys
    x1s, y1s = np.roll(xs, -1), np.roll(ys, -1)

    j_min, j_max = scanline_row_bounds(float(ys.min()), float(ys.max()), height)
    written = 0
    for j in range(j_min, j_max + 1):
        yc = j + 0.5
        # Half-open rule: edge crosses the scanline iff yc is in [min, max).
        crosses = (y0s > yc) != (y1s > yc)
        if not crosses.any():
            continue
        ex0, ey0 = x0s[crosses], y0s[crosses]
        ex1, ey1 = x1s[crosses], y1s[crosses]
        cross_x = ex0 + (yc - ey0) * (ex1 - ex0) / (ey1 - ey0)
        cross_x.sort()
        for k in range(0, len(cross_x) - 1, 2):
            xa, xb = cross_x[k], cross_x[k + 1]
            # Pixel centers i + 0.5 in the half-open span [xa, xb).
            i_start = max(math.ceil(xa - 0.5), 0)
            i_stop = math.floor(xb - 0.5)
            if xb - 0.5 == i_stop:  # center exactly on the exit edge: excluded
                i_stop -= 1
            i_stop = min(i_stop, width - 1)
            if i_start <= i_stop:
                buffer[j, i_start : i_stop + 1] = color
                written += i_stop - i_start + 1
    return written


def polygon_coverage_mask(
    shape: Tuple[int, int], vertices: Sequence[Tuple[float, float]]
) -> np.ndarray:
    """Boolean mask of pixels whose centers are inside the polygon.

    Convenience wrapper over :func:`rasterize_polygon_evenodd` used by tests
    and by the interior filter's reference implementation.
    """
    buf = np.zeros(shape, dtype=np.float32)
    rasterize_polygon_evenodd(buf, vertices, color=1.0)
    return buf > 0.0
