"""Vectorized (whole-draw-call) conservative AA line rasterization.

Real graphics hardware rasterizes the thousands of edges of a draw call in
parallel; a per-edge Python loop would misrepresent the cost structure the
paper exploits (per-edge setup is cheap, per-pixel work is parallel).  This
module rasterizes *all* edges of a draw call with numpy broadcasting: one
separating-axis test evaluated for every (edge, pixel) pair, chunked to
bound memory.

Semantics are identical to
:func:`repro.gpu.raster_line.rasterize_line_aa_conservative` applied per
edge (the equivalence is property-tested): a pixel is colored iff its closed
unit cell intersects the width-``w`` bounding rectangle of some edge, or -
with ``cap_points`` - the ``w x w`` end-point square of some edge.
Degenerate (zero-length) edges always use the square footprint, which
covers the disc of radius ``w/2`` and preserves conservativeness.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import numpy as np

from .raster_line import COVERAGE_EPS

#: Cap on the number of (edge, pixel) entries materialized per chunk.
_CHUNK_BUDGET = 1 << 20


@lru_cache(maxsize=32)
def _pixel_centers(height: int, width: int) -> Tuple[np.ndarray, np.ndarray]:
    """Cached pixel-center coordinate vectors for a buffer shape."""
    cx = np.arange(width, dtype=np.float64) + 0.5
    cy = np.arange(height, dtype=np.float64) + 0.5
    cx.setflags(write=False)
    cy.setflags(write=False)
    return cx, cy


def edges_coverage_mask(
    shape,
    edges: np.ndarray,
    width_px: float,
    cap_points: bool = False,
) -> np.ndarray:
    """Boolean coverage mask of a whole draw call's conservative footprint.

    This is the draw call's *fragment set*: every per-fragment operation
    (plain color write, additive blending, logical OR, stencil increment,
    depth write/test) applies to exactly these pixels once - the
    granularity at which the alternative overlap-detection implementations
    of the paper's section 3 differ.
    """
    if width_px <= 0.0:
        raise ValueError("line width must be positive")
    if edges.ndim != 2 or edges.shape[1] != 4:
        raise ValueError(f"edges must be (E, 4), got {edges.shape}")
    height, width = shape
    n_edges = edges.shape[0]
    if n_edges == 0:
        return np.zeros((height, width), dtype=bool)
    cx, cy = _pixel_centers(height, width)

    hv = width_px * 0.5
    chunk = max(1, _CHUNK_BUDGET // (height * width))
    if n_edges <= chunk:
        return _chunk_mask(edges, cx, cy, hv, cap_points)
    mask = np.zeros((height, width), dtype=bool)
    for start in range(0, n_edges, chunk):
        mask |= _chunk_mask(edges[start : start + chunk], cx, cy, hv, cap_points)
    return mask


def rasterize_edges_bulk(
    buffer: np.ndarray,
    edges: np.ndarray,
    width_px: float,
    color: float = 1.0,
    cap_points: bool = False,
) -> int:
    """Color pixels covered by any edge's conservative AA footprint.

    ``edges`` is an ``(E, 4)`` float array of window-space segments
    ``[x0, y0, x1, y1]``.  Returns the number of pixels written (pixels
    covered by several edges count once - blending is disabled, writes are
    idempotent).
    """
    mask = edges_coverage_mask(buffer.shape, edges, width_px, cap_points)
    written = int(np.count_nonzero(mask))
    if written:
        buffer[mask] = color
    return written


def edges_coverage_masks_grouped(
    shape,
    edges: np.ndarray,
    group_sizes: np.ndarray,
    widths_px,
    cap_points: bool = False,
) -> np.ndarray:
    """Per-group coverage masks of one bulk draw call: ``(G, H, W)`` bool.

    ``edges`` holds the segments of all ``G`` groups concatenated in group
    order (``group_sizes[k]`` edges for group ``k``; zero-edge groups are
    legal and yield empty masks).  ``widths_px`` is a scalar or a per-group
    array of line widths.  Each group's mask equals
    :func:`edges_coverage_mask` applied to that group's edges at that
    group's width - the per-edge footprint math is shared, so batching many
    groups into one call cannot change any pixel.  This is the tiled
    pipeline's bulk rasterization primitive: every tile of an atlas batch
    is one group, rasterized in tile-local coordinates.
    """
    height, width = shape
    if edges.ndim != 2 or edges.shape[1] != 4:
        raise ValueError(f"edges must be (E, 4), got {edges.shape}")
    sizes = np.asarray(group_sizes, dtype=np.intp)
    if sizes.ndim != 1:
        raise ValueError("group_sizes must be a 1-d sequence")
    if (sizes < 0).any():
        raise ValueError("group sizes must be non-negative")
    n_groups = sizes.shape[0]
    n_edges = edges.shape[0]
    if int(sizes.sum()) != n_edges:
        raise ValueError(
            f"group sizes sum to {int(sizes.sum())}, expected {n_edges} edges"
        )
    widths = np.asarray(widths_px, dtype=np.float64)
    if (widths <= 0.0).any():
        raise ValueError("line width must be positive")
    masks = np.zeros((n_groups, height, width), dtype=bool)
    if n_edges == 0:
        return masks
    cx, cy = _pixel_centers(height, width)
    gid = np.repeat(np.arange(n_groups, dtype=np.intp), sizes)
    if widths.ndim == 0:
        hv_edges = None
        hv_scalar = float(widths) * 0.5
    else:
        if widths.shape != (n_groups,):
            raise ValueError(
                f"widths_px must be scalar or ({n_groups},), got {widths.shape}"
            )
        hv_edges = (widths * 0.5)[gid]
        hv_scalar = 0.0
    chunk = max(1, _CHUNK_BUDGET // (height * width))
    for start in range(0, n_edges, chunk):
        stop = min(start + chunk, n_edges)
        ids = gid[start:stop]
        hv = hv_scalar if hv_edges is None else hv_edges[start:stop]
        hits = _chunk_hits(edges[start:stop], cx, cy, hv, cap_points)
        # Edges arrive grouped, so equal-id runs are contiguous: one
        # reduceat ORs each run, then the run masks fold into the output.
        first = np.flatnonzero(np.r_[True, ids[1:] != ids[:-1]])
        partial = np.logical_or.reduceat(hits, first, axis=0)
        masks[ids[first]] |= partial
    return masks


def _chunk_mask(
    e: np.ndarray,
    cx: np.ndarray,
    cy: np.ndarray,
    hv: float,
    cap_points: bool,
) -> np.ndarray:
    """Footprint mask (H, W) for one chunk of edges."""
    return _chunk_hits(e, cx, cy, hv, cap_points).any(axis=0)


def _chunk_hits(
    e: np.ndarray,
    cx: np.ndarray,
    cy: np.ndarray,
    hv,
    cap_points: bool,
) -> np.ndarray:
    """Per-edge footprint hits (E, H, W) for one chunk of edges.

    ``hv`` (the half line width) is a scalar or an (E,) array; per-edge
    widths are what let one bulk call rasterize tiles whose projections
    assign different pixel widths to the same query distance.
    """
    x0 = e[:, 0]
    y0 = e[:, 1]
    x1 = e[:, 2]
    y1 = e[:, 3]
    dx = x1 - x0
    dy = y1 - y0
    length = np.hypot(dx, dy)
    degenerate = length == 0.0
    any_degenerate = bool(degenerate.any())
    safe_len = np.where(degenerate, 1.0, length)
    ux = dx / safe_len
    uy = dy / safe_len
    aux = np.abs(ux)
    auy = np.abs(uy)
    hu = length * 0.5
    # |v| components mirror |u| (v is the left normal of u), and the cell
    # half-extent projects identically on the u and v axes.
    cell = 0.5 * (aux + auy)

    # Broadcast layout: edges on axis 0, rows on axis 1, columns on axis 2.
    gx = cx[None, None, :] - ((x0 + x1) * 0.5)[:, None, None]  # (E, 1, W)
    gy = cy[None, :, None] - ((y0 + y1) * 0.5)[:, None, None]  # (E, H, 1)

    ux3 = ux[:, None, None]
    uy3 = uy[:, None, None]
    hit = (
        (np.abs(gx) <= (hu * aux + hv * auy + 0.5 + COVERAGE_EPS)[:, None, None])
        & (np.abs(gy) <= (hu * auy + hv * aux + 0.5 + COVERAGE_EPS)[:, None, None])
        & (np.abs(gx * ux3 + gy * uy3) <= (hu + cell + COVERAGE_EPS)[:, None, None])
        & (np.abs(gy * ux3 - gx * uy3) <= (hv + cell + COVERAGE_EPS)[:, None, None])
    )
    if any_degenerate:
        # Degenerate edges fall back to the end-point square unconditionally.
        hit &= ~degenerate[:, None, None]

    if cap_points or any_degenerate:
        half = hv + 0.5 + COVERAGE_EPS
        half3 = half[:, None, None] if isinstance(half, np.ndarray) else half
        if cap_points:
            cap = (
                (np.abs(cx[None, None, :] - x0[:, None, None]) <= half3)
                & (np.abs(cy[None, :, None] - y0[:, None, None]) <= half3)
            ) | (
                (np.abs(cx[None, None, :] - x1[:, None, None]) <= half3)
                & (np.abs(cy[None, :, None] - y1[:, None, None]) <= half3)
            )
        else:
            cap = (
                (np.abs(cx[None, None, :] - x0[:, None, None]) <= half3)
                & (np.abs(cy[None, :, None] - y0[:, None, None]) <= half3)
            ) & degenerate[:, None, None]
        hit |= cap
    return hit
