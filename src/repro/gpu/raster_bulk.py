"""Vectorized (whole-draw-call) conservative AA line rasterization.

Real graphics hardware rasterizes the thousands of edges of a draw call in
parallel; a per-edge Python loop would misrepresent the cost structure the
paper exploits (per-edge setup is cheap, per-pixel work is parallel).  This
module rasterizes *all* edges of a draw call with numpy broadcasting: one
separating-axis test evaluated for every (edge, pixel) pair, chunked to
bound memory.

Semantics are identical to
:func:`repro.gpu.raster_line.rasterize_line_aa_conservative` applied per
edge (the equivalence is property-tested): a pixel is colored iff its closed
unit cell intersects the width-``w`` bounding rectangle of some edge, or -
with ``cap_points`` - the ``w x w`` end-point square of some edge.
Degenerate (zero-length) edges always use the square footprint, which
covers the disc of radius ``w/2`` and preserves conservativeness.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import numpy as np

from .raster_line import COVERAGE_EPS

#: Cap on the number of (edge, pixel) entries materialized per chunk.
_CHUNK_BUDGET = 1 << 20


@lru_cache(maxsize=32)
def _pixel_centers(height: int, width: int) -> Tuple[np.ndarray, np.ndarray]:
    """Cached pixel-center coordinate vectors for a buffer shape."""
    cx = np.arange(width, dtype=np.float64) + 0.5
    cy = np.arange(height, dtype=np.float64) + 0.5
    cx.setflags(write=False)
    cy.setflags(write=False)
    return cx, cy


def edges_coverage_mask(
    shape,
    edges: np.ndarray,
    width_px: float,
    cap_points: bool = False,
) -> np.ndarray:
    """Boolean coverage mask of a whole draw call's conservative footprint.

    This is the draw call's *fragment set*: every per-fragment operation
    (plain color write, additive blending, logical OR, stencil increment,
    depth write/test) applies to exactly these pixels once - the
    granularity at which the alternative overlap-detection implementations
    of the paper's section 3 differ.
    """
    if width_px <= 0.0:
        raise ValueError("line width must be positive")
    if edges.ndim != 2 or edges.shape[1] != 4:
        raise ValueError(f"edges must be (E, 4), got {edges.shape}")
    height, width = shape
    n_edges = edges.shape[0]
    if n_edges == 0:
        return np.zeros((height, width), dtype=bool)
    cx, cy = _pixel_centers(height, width)

    hv = width_px * 0.5
    chunk = max(1, _CHUNK_BUDGET // (height * width))
    if n_edges <= chunk:
        return _chunk_mask(edges, cx, cy, hv, cap_points)
    mask = np.zeros((height, width), dtype=bool)
    for start in range(0, n_edges, chunk):
        mask |= _chunk_mask(edges[start : start + chunk], cx, cy, hv, cap_points)
    return mask


def rasterize_edges_bulk(
    buffer: np.ndarray,
    edges: np.ndarray,
    width_px: float,
    color: float = 1.0,
    cap_points: bool = False,
) -> int:
    """Color pixels covered by any edge's conservative AA footprint.

    ``edges`` is an ``(E, 4)`` float array of window-space segments
    ``[x0, y0, x1, y1]``.  Returns the number of pixels written (pixels
    covered by several edges count once - blending is disabled, writes are
    idempotent).
    """
    mask = edges_coverage_mask(buffer.shape, edges, width_px, cap_points)
    written = int(np.count_nonzero(mask))
    if written:
        buffer[mask] = color
    return written


def _chunk_mask(
    e: np.ndarray,
    cx: np.ndarray,
    cy: np.ndarray,
    hv: float,
    cap_points: bool,
) -> np.ndarray:
    """Footprint mask (H, W) for one chunk of edges."""
    x0 = e[:, 0]
    y0 = e[:, 1]
    x1 = e[:, 2]
    y1 = e[:, 3]
    dx = x1 - x0
    dy = y1 - y0
    length = np.hypot(dx, dy)
    degenerate = length == 0.0
    any_degenerate = bool(degenerate.any())
    safe_len = np.where(degenerate, 1.0, length)
    ux = dx / safe_len
    uy = dy / safe_len
    aux = np.abs(ux)
    auy = np.abs(uy)
    hu = length * 0.5
    # |v| components mirror |u| (v is the left normal of u), and the cell
    # half-extent projects identically on the u and v axes.
    cell = 0.5 * (aux + auy)

    # Broadcast layout: edges on axis 0, rows on axis 1, columns on axis 2.
    gx = cx[None, None, :] - ((x0 + x1) * 0.5)[:, None, None]  # (E, 1, W)
    gy = cy[None, :, None] - ((y0 + y1) * 0.5)[:, None, None]  # (E, H, 1)

    ux3 = ux[:, None, None]
    uy3 = uy[:, None, None]
    rect_hit = (
        (np.abs(gx) <= (hu * aux + hv * auy + 0.5 + COVERAGE_EPS)[:, None, None])
        & (np.abs(gy) <= (hu * auy + hv * aux + 0.5 + COVERAGE_EPS)[:, None, None])
        & (np.abs(gx * ux3 + gy * uy3) <= (hu + cell + COVERAGE_EPS)[:, None, None])
        & (np.abs(gy * ux3 - gx * uy3) <= (hv + cell + COVERAGE_EPS)[:, None, None])
    )
    if any_degenerate:
        # Degenerate edges fall back to the end-point square unconditionally.
        rect_hit &= ~degenerate[:, None, None]
    mask = rect_hit.any(axis=0)

    if cap_points or any_degenerate:
        if cap_points:
            px = np.concatenate([x0, x1])
            py = np.concatenate([y0, y1])
        else:
            px = x0[degenerate]
            py = y0[degenerate]
        if px.size:
            half = hv + 0.5 + COVERAGE_EPS
            cap_hit = (
                np.abs(cx[None, None, :] - px[:, None, None]) <= half
            ) & (np.abs(cy[None, :, None] - py[:, None, None]) <= half)
            mask |= cap_hit.any(axis=0)
    return mask
