"""Rendering state and device limits for the simulated pipeline.

Mirrors the slice of OpenGL state the paper's technique touches: line width,
point size, anti-aliasing, blending, and current color - plus the device
limits that shape the algorithms (the 10-pixel maximum anti-aliased line
width on the paper's GeForce4 platform forces the software fallback for
large query distances, section 4.4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


#: Width of an anti-aliased line covering the pixel diagonal - the paper's
#: default for intersection tests (section 2.2.2: "we assume the line width
#: is sqrt(2), which is the length of the pixel diagonal").
DEFAULT_AA_LINE_WIDTH = math.sqrt(2.0)

#: The gray level both polygons are rendered with (Algorithm 3.1 steps
#: 2.3/2.5 use color (0.5, 0.5, 0.5)); two overlapping writes accumulate to
#: 1.0.
EDGE_COLOR = 0.5

#: Accumulated value that signals an overlapping pixel (the (1,1,1) searched
#: for in step 2.8).
OVERLAP_COLOR = 1.0


@dataclass(frozen=True)
class DeviceLimits:
    """Hardware capability limits.

    Defaults follow the paper's test platform: anti-aliased line width was
    capped at 10 pixels on the GeForce4 Ti4600 (section 4.4), and point size
    shares the cap since the technique uses points only as line caps.
    """

    max_aa_line_width: float = 10.0
    max_point_size: float = 10.0
    max_viewport: int = 2048

    def supports_line_width(self, width_px: float) -> bool:
        """True when the device can render AA lines of ``width_px``."""
        return 0.0 < width_px <= self.max_aa_line_width

    def supports_point_size(self, size_px: float) -> bool:
        return 0.0 < size_px <= self.max_point_size


@dataclass
class RasterState:
    """Mutable GL-like rendering state."""

    line_width: float = DEFAULT_AA_LINE_WIDTH
    point_size: float = DEFAULT_AA_LINE_WIDTH
    antialias: bool = True
    #: Additive blending (glBlendFunc(GL_ONE, GL_ONE)): each draw call adds
    #: its color to the covered pixels instead of replacing them.
    blend: bool = False
    color: float = EDGE_COLOR
    #: Render end points of each segment as wide points (Figure 6's
    #: "including the end points"); the distance test enables this so the
    #: widened footprint covers the full capsule around the boundary.
    cap_points: bool = False
    #: glLogicOp: "or" ORs the (integral) color into the buffer bits.
    logic_op: str | None = None
    #: Whether fragments write the color buffer at all (glColorMask).
    color_write: bool = True
    #: glStencilOp: "incr" increments the stencil value of covered pixels
    #: (saturating at 255, as the spec requires).
    stencil_op: str | None = None
    #: Write fragments' depth value into the depth buffer (glDepthMask).
    depth_write: bool = False
    #: glDepthFunc: "equal" discards fragments whose depth differs from the
    #: stored depth.  None disables the test (GL_ALWAYS).
    depth_test: str | None = None
    #: The depth value all fragments of a draw call carry (the technique
    #: renders flat 2D geometry at a constant z).
    depth_value: float = 0.5

    def reset_fragment_ops(self) -> None:
        """Restore the default write-color-only fragment pipeline."""
        self.blend = False
        self.logic_op = None
        self.color_write = True
        self.stencil_op = None
        self.depth_write = False
        self.depth_test = None

    def validate(self, limits: DeviceLimits) -> None:
        """Raise ValueError when the state exceeds the device limits."""
        if self.antialias and not limits.supports_line_width(self.line_width):
            raise ValueError(
                f"AA line width {self.line_width} exceeds device limit "
                f"{limits.max_aa_line_width}"
            )
        if not limits.supports_point_size(self.point_size):
            raise ValueError(
                f"point size {self.point_size} exceeds device limit "
                f"{limits.max_point_size}"
            )
