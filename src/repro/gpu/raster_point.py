"""Point rasterization (OpenGL spec rules, paper section 2.2.1).

Two flavors:

* :func:`rasterize_point_basic` - the spec rule: truncate the window
  coordinates and color the single pixel ``(floor(xw), floor(yw))``.
* :func:`rasterize_point_conservative` - wide points used as end-point caps
  for widened line segments in the distance test (section 3.1, Figure 6):
  every pixel whose cell intersects the ``size x size`` square centered on
  the point is colored.  The square cap covers the disc cap of the same
  diameter, preserving the conservative no-false-negative guarantee.
"""

from __future__ import annotations

import math

import numpy as np


def rasterize_point_basic(
    buffer: np.ndarray, x: float, y: float, color: float = 1.0
) -> int:
    """Color the pixel containing window coordinates ``(x, y)``.

    Returns the number of pixels written (0 when the point falls outside the
    buffer - the hardware clips it).
    """
    height, width = buffer.shape
    px = math.floor(x)
    py = math.floor(y)
    if 0 <= px < width and 0 <= py < height:
        buffer[py, px] = color
        return 1
    return 0


def point_conservative_range(
    shape, x: float, y: float, size: float
) -> "tuple[int, int, int, int] | None":
    """Clipped inclusive pixel range ``(i0, i1, j0, j1)`` of a square cap.

    ``None`` when the footprint misses the buffer entirely.  Shared by
    :func:`rasterize_point_conservative` and the distinct-pixel counting
    of capped anti-aliased lines, so both agree on the exact footprint.
    """
    if size < 0.0:
        raise ValueError("point size must be non-negative")
    height, width = shape
    half = size * 0.5
    # Closed cell [i, i+1] intersects the closed square [x-half, x+half]
    # iff i <= x+half and i+1 >= x-half.
    eps = 1e-7  # matches COVERAGE_EPS in raster_line (kept literal to
    # avoid a circular import); see that constant for the rationale
    i0 = max(math.ceil(x - half - 1.0 - eps), 0)
    i1 = min(math.floor(x + half + eps), width - 1)
    j0 = max(math.ceil(y - half - 1.0 - eps), 0)
    j1 = min(math.floor(y + half + eps), height - 1)
    if i0 > i1 or j0 > j1:
        return None
    return i0, i1, j0, j1


def rasterize_point_conservative(
    buffer: np.ndarray, x: float, y: float, size: float, color: float = 1.0
) -> int:
    """Color every pixel whose cell touches the square of side ``size`` at ``(x, y)``.

    Returns the number of pixels written.
    """
    rng = point_conservative_range(buffer.shape, x, y, size)
    if rng is None:
        return 0
    i0, i1, j0, j1 = rng
    buffer[j0 : j1 + 1, i0 : i1 + 1] = color
    return (i1 - i0 + 1) * (j1 - j0 + 1)
