"""Frame buffer simulation: color buffer and accumulation buffer.

The paper's main technique uses the *color buffer* and the *accumulation
buffer* (Algorithm 3.1 steps 2.2-2.7); the *stencil* and *depth* buffers
are provided as well because section 3 notes that the overlap search can
equally be implemented "using hardware blending, logical operations, depth
buffer, and stencil buffer" (Hoff et al. [13]) - all four variants live in
:mod:`repro.core.hardware_test`.  Color/accum/depth are numpy float32
arrays indexed ``[y, x]`` (a single luminance channel suffices: the
algorithm renders one gray level); the stencil plane is uint8, as on real
hardware.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


class Framebuffer:
    """A ``width x height`` frame buffer with color and accumulation planes."""

    def __init__(self, width: int, height: int) -> None:
        if width < 1 or height < 1:
            raise ValueError(f"framebuffer must be at least 1x1, got {width}x{height}")
        self.width = int(width)
        self.height = int(height)
        self.color = np.zeros((self.height, self.width), dtype=np.float32)
        self.accum = np.zeros((self.height, self.width), dtype=np.float32)
        self.stencil = np.zeros((self.height, self.width), dtype=np.uint8)
        self.depth = np.ones((self.height, self.width), dtype=np.float32)

    # -- clears ---------------------------------------------------------------

    def clear_color(self, value: float = 0.0) -> None:
        """glClear(GL_COLOR_BUFFER_BIT) with glClearColor(value, ...)."""
        self.color.fill(value)

    def clear_accum(self, value: float = 0.0) -> None:
        """glClear(GL_ACCUM_BUFFER_BIT)."""
        self.accum.fill(value)

    def clear_stencil(self, value: int = 0) -> None:
        """glClear(GL_STENCIL_BUFFER_BIT) with glClearStencil(value)."""
        self.stencil.fill(value)

    def clear_depth(self, value: float = 1.0) -> None:
        """glClear(GL_DEPTH_BUFFER_BIT) with glClearDepth(value)."""
        self.depth.fill(value)

    # -- accumulation operations (glAccum) ---------------------------------------

    def accum_add(self, scale: float = 1.0) -> None:
        """glAccum(GL_ACCUM, scale): accum += color * scale."""
        self.accum += self.color * np.float32(scale)

    def accum_load(self, scale: float = 1.0) -> None:
        """glAccum(GL_LOAD, scale): accum = color * scale."""
        np.multiply(self.color, np.float32(scale), out=self.accum)

    def accum_return(self, scale: float = 1.0) -> None:
        """glAccum(GL_RETURN, scale): color = accum * scale (step 2.7)."""
        np.multiply(self.accum, np.float32(scale), out=self.color)

    def accum_mult(self, scale: float) -> None:
        """glAccum(GL_MULT, scale): accum *= scale."""
        self.accum *= np.float32(scale)

    # -- readback ---------------------------------------------------------------

    def minmax(self, buffer: str = "color") -> Tuple[float, float]:
        """The hardware Minmax function (paper section 3.2).

        Returns the minimum and maximum values of the selected buffer without
        transferring the pixel block to host memory - the simulation only
        returns the two scalars, matching what the real extension exposes.
        """
        plane = self._plane(buffer)
        return float(plane.min()), float(plane.max())

    def read_pixels(self, buffer: str = "color") -> np.ndarray:
        """Full buffer readback (glReadPixels): the expensive alternative to
        Minmax that the paper avoids.  Returns a copy, like the real call."""
        return self._plane(buffer).copy()

    def _plane(self, buffer: str) -> np.ndarray:
        if buffer == "color":
            return self.color
        if buffer == "accum":
            return self.accum
        if buffer == "stencil":
            return self.stencil
        if buffer == "depth":
            return self.depth
        raise ValueError(
            f"unknown buffer {buffer!r}; expected color|accum|stencil|depth"
        )
