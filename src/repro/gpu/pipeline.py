"""The simulated rendering pipeline: viewport transform, draw calls, readback.

This is the stand-in for the OpenGL context + graphics card of the paper's
experiments.  It reproduces the pipeline stages of Figure 2 that matter for
the technique:

* *transformation* - an affine, uniform-scale projection of a data-space
  window onto the pixel grid (section 3.2's projection strategies give the
  window; uniform scale keeps widened line widths isotropic so Equation (1)
  converts data distances to pixel widths exactly);
* *clipping* - edges entirely outside the viewport are rejected before
  rasterization, like the hardware's clipping stage;
* *rasterization* - the point/line/polygon rasterizers of this package,
  honoring the current :class:`~repro.gpu.state.RasterState`;
* *per-buffer operations* - color/accumulation buffer clears, glAccum-style
  transfers, the Minmax readback, and full glReadPixels readback.

Every operation updates :class:`~repro.gpu.costmodel.CostCounters`, enabling
deterministic ablation benchmarks alongside wall-clock measurements.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

from ..cache.keys import window_key
from ..geometry.rect import Rect
from ..obs.capture import current_recorder
from .costmodel import CostCounters
from .framebuffer import Framebuffer
from .raster_bulk import edges_coverage_mask
from .raster_point import rasterize_point_basic, rasterize_point_conservative
from .raster_polygon import polygon_coverage_mask
from .raster_vector import (
    RASTER_BACKENDS,
    lines_basic_coverage_mask,
    lines_basic_coverage_mask_reference,
    polygon_fill_coverage_mask,
)
from .state import DeviceLimits, RasterState

Coords = Sequence[Tuple[float, float]]


def uniform_window_scale(width: int, height: int, window: Rect) -> float:
    """The uniform (isotropic) scale projecting ``window`` into a viewport.

    The scale is the largest uniform one that maps the *entire* window
    inside the ``width x height`` pixel grid: per axis the window extent
    must fit its viewport dimension, so the binding axis decides.  Using
    ``max(width, height) / max-span`` instead (the historical formula) can
    push part of the window outside a non-square viewport; pixels lost
    there are lost for both rendered boundaries, so the hardware test could
    miss an overlap and report a false DISJOINT - breaking the paper's
    no-false-negative guarantee.  Degenerate (zero-extent) axes impose no
    constraint; a fully degenerate window maps to the first pixel at scale
    1.  For square viewports this is bit-identical to the historical
    formula (division is monotone in the divisor).
    """
    span = max(window.width, window.height)
    if span <= 0.0:
        return 1.0
    sx = width / window.width if window.width > 0.0 else math.inf
    sy = height / window.height if window.height > 0.0 else math.inf
    return min(sx, sy)


class GraphicsPipeline:
    """A reusable rendering context of fixed resolution.

    Hardware contexts are expensive to create, so - like the paper's
    implementation - callers allocate one pipeline per window resolution and
    reuse it across the thousands or millions of pairwise tests of a query.
    """

    def __init__(
        self,
        width: int,
        height: Optional[int] = None,
        limits: Optional[DeviceLimits] = None,
        raster_backend: str = "vector",
    ) -> None:
        height = width if height is None else height
        self.limits = limits if limits is not None else DeviceLimits()
        if raster_backend not in RASTER_BACKENDS:
            raise ValueError(
                f"unknown raster backend {raster_backend!r}; "
                f"choose from {RASTER_BACKENDS}"
            )
        #: Which basic-rule rasterizers produce coverage masks: the NumPy
        #: whole-draw-call kernels ("vector", the default) or the retained
        #: pure-Python spec loops ("reference").  Bit-identical outputs;
        #: the reference exists for property tests and the bench gate.
        self.raster_backend = raster_backend
        if width < 1 or height < 1:
            raise ValueError("viewport must be at least 1x1")
        if width > self.limits.max_viewport or height > self.limits.max_viewport:
            raise ValueError(
                f"viewport {width}x{height} exceeds device limit "
                f"{self.limits.max_viewport}"
            )
        self.fb = Framebuffer(width, height)
        self.state = RasterState()
        self.counters = CostCounters()
        #: Optional :class:`~repro.cache.render.RenderCache` of per-draw
        #: conservative coverage masks.  ``None`` (the default) disables
        #: memoization; installers (:class:`~repro.core.hardware_test.
        #: HardwareSegmentTest`) set it from their resolved CacheConfig.
        #: Only keyed draw calls consult it, and fragment operations always
        #: replay live, so cached renders leave buffers and returned masks
        #: bit-identical to uncached ones.
        self.render_cache = None
        # Identity-ish projection until a window is set.
        self._window = Rect(0.0, 0.0, float(width), float(height))
        self._scale = 1.0
        self._offset4 = np.zeros(4, dtype=np.float64)

    # -- projection ----------------------------------------------------------

    @property
    def width(self) -> int:
        return self.fb.width

    @property
    def height(self) -> int:
        return self.fb.height

    @property
    def window(self) -> Rect:
        """The data-space rectangle currently mapped onto the viewport."""
        return self._window

    @property
    def scale(self) -> float:
        """Pixels per data unit of the current projection."""
        return self._scale

    def set_data_window(self, window: Rect) -> None:
        """Project ``window`` onto the viewport with uniform scale.

        The window's binding side spans its viewport dimension and the whole
        window maps inside the pixel grid (:func:`uniform_window_scale`);
        uniform scaling means a data-space distance D maps to ``D * scale``
        pixels in every direction, which Equation (1) relies on.  Degenerate
        (zero-extent) windows are legal - they arise when two MBRs touch
        along an edge or corner - and map everything to the first pixel.
        """
        self._window = window
        self._scale = uniform_window_scale(self.width, self.height, window)
        self._offset4 = np.array(
            [window.xmin, window.ymin, window.xmin, window.ymin], dtype=np.float64
        )
        recorder = current_recorder()
        if recorder is not None:
            recorder.on_set_window(self, window)

    def data_to_window(self, x: float, y: float) -> Tuple[float, float]:
        """Transform data coordinates to window (pixel) coordinates."""
        return (
            (x - self._window.xmin) * self._scale,
            (y - self._window.ymin) * self._scale,
        )

    def distance_to_pixels(self, d: float) -> float:
        """Convert a data-space distance to pixels under the projection."""
        return d * self._scale

    def line_width_for_distance(self, d: float) -> int:
        """Equation (1): the integral pixel width for query distance ``d``.

        ``LineWidth = PointWidth = ceil(d * n / max(w, h)) = ceil(d * scale)``,
        rounded up so the rendered footprint never under-covers the distance.
        """
        return max(1, math.ceil(self.distance_to_pixels(d)))

    # -- buffer operations ---------------------------------------------------

    def clear_color(self, value: float = 0.0) -> None:
        self.fb.clear_color(value)
        self.counters.buffer_clears += 1
        self.counters.pixels_cleared += self.width * self.height
        recorder = current_recorder()
        if recorder is not None:
            recorder.on_clear(self, "color", value)

    def clear_accum(self, value: float = 0.0) -> None:
        self.fb.clear_accum(value)
        self.counters.buffer_clears += 1
        self.counters.pixels_cleared += self.width * self.height
        recorder = current_recorder()
        if recorder is not None:
            recorder.on_clear(self, "accum", value)

    def clear_stencil(self, value: int = 0) -> None:
        self.fb.clear_stencil(value)
        self.counters.buffer_clears += 1
        self.counters.pixels_cleared += self.width * self.height
        recorder = current_recorder()
        if recorder is not None:
            recorder.on_clear(self, "stencil", value)

    def clear_depth(self, value: float = 1.0) -> None:
        self.fb.clear_depth(value)
        self.counters.buffer_clears += 1
        self.counters.pixels_cleared += self.width * self.height
        recorder = current_recorder()
        if recorder is not None:
            recorder.on_clear(self, "depth", value)

    def accum_add(self, scale: float = 1.0) -> None:
        self.fb.accum_add(scale)
        self.counters.accum_ops += 1
        recorder = current_recorder()
        if recorder is not None:
            recorder.on_accum(self, "add", scale)

    def accum_load(self, scale: float = 1.0) -> None:
        self.fb.accum_load(scale)
        self.counters.accum_ops += 1
        recorder = current_recorder()
        if recorder is not None:
            recorder.on_accum(self, "load", scale)

    def accum_return(self, scale: float = 1.0) -> None:
        self.fb.accum_return(scale)
        self.counters.accum_ops += 1
        recorder = current_recorder()
        if recorder is not None:
            recorder.on_accum(self, "return", scale)

    def minmax(self, buffer: str = "color") -> Tuple[float, float]:
        """Hardware Minmax: min/max of a buffer without a bus transfer."""
        self.counters.minmax_ops += 1
        self.counters.pixels_scanned += self.width * self.height
        result = self.fb.minmax(buffer)
        recorder = current_recorder()
        if recorder is not None:
            recorder.on_minmax(self, buffer, result)
        return result

    def read_pixels(self, buffer: str = "color"):
        """Full readback through the bus (the slow path Minmax avoids)."""
        self.counters.readback_ops += 1
        self.counters.pixels_transferred += self.width * self.height
        data = self.fb.read_pixels(buffer)
        recorder = current_recorder()
        if recorder is not None:
            recorder.on_read_pixels(self, buffer, data)
        return data

    # -- draw calls -----------------------------------------------------------

    def _render_cache_key(self, key: object):
        """The full memoization key for one keyed draw call.

        The conservative coverage mask of a boundary is a pure function of
        its edge content (``key``, the polygon digest), the projected
        window, the widened line footprint, and the viewport - exactly
        these components.  Fragment-op state (color, blend, logic, depth,
        stencil) is deliberately absent: those stages replay live on every
        draw, cached or not.
        """
        state = self.state
        return (
            key,
            window_key(self._window),
            float(state.line_width),
            bool(state.cap_points),
            self.height,
            self.width,
        )

    def render_coverage_mask(
        self, edges_data: np.ndarray, key: object = None
    ) -> np.ndarray:
        """Render a boundary and return its conservative coverage mask.

        Used by the distance-field test: the draw call goes through the
        normal transform/clip/rasterize stages (and is counted as such),
        but the caller receives the fragment mask instead of a buffer
        write.  When ``key`` identifies the boundary's content and a
        render cache is installed, a repeated (content, window, footprint)
        render returns the memoized mask without transforming or
        rasterizing.
        """
        self.state.validate(self.limits)
        self.counters.draw_calls += 1
        state = self.state
        cache = self.render_cache
        cache_key = None
        if cache is not None and key is not None:
            cache_key = self._render_cache_key(key)
            mask = cache.lookup(cache_key)
            if mask is not None:
                self.counters.pixels_written += int(np.count_nonzero(mask))
                recorder = current_recorder()
                if recorder is not None:
                    recorder.on_coverage_mask(self, edges_data, mask)
                return mask
        edges = (edges_data - self._offset4) * self._scale
        pad = max(state.line_width, state.point_size) + 1.0
        x_lo = np.minimum(edges[:, 0], edges[:, 2])
        x_hi = np.maximum(edges[:, 0], edges[:, 2])
        y_lo = np.minimum(edges[:, 1], edges[:, 3])
        y_hi = np.maximum(edges[:, 1], edges[:, 3])
        keep = (
            (x_hi >= -pad)
            & (x_lo <= self.width + pad)
            & (y_hi >= -pad)
            & (y_lo <= self.height + pad)
        )
        kept = int(np.count_nonzero(keep))
        self.counters.edges_rendered += kept
        self.counters.edges_clipped_away += edges.shape[0] - kept
        if kept == 0:
            mask = np.zeros((self.height, self.width), dtype=bool)
        else:
            if kept != edges.shape[0]:
                edges = edges[keep]
            mask = edges_coverage_mask(
                (self.height, self.width),
                edges,
                width_px=state.line_width,
                cap_points=state.cap_points,
            )
            self.counters.pixels_written += int(np.count_nonzero(mask))
        if cache_key is not None:
            cache.store(cache_key, mask)
        recorder = current_recorder()
        if recorder is not None:
            recorder.on_coverage_mask(self, edges_data, mask)
        return mask

    def compute_distance_field(self, mask: np.ndarray) -> np.ndarray:
        """Distance field of a coverage mask (counted as a field pass)."""
        from .distance_field import distance_field

        self.counters.distance_field_pixels += self.width * self.height
        field = distance_field(mask)
        recorder = current_recorder()
        if recorder is not None:
            recorder.on_distance_field(self, mask, field)
        return field


    def draw_polygon_edges(self, coords: Coords, closed: bool = True) -> None:
        """Render a vertex chain as line segments under the current state.

        This is how Algorithm 3.1 renders polygons: as chains of segments,
        never as filled polygons, avoiding software triangulation.  Edges
        wholly outside the viewport (after widening) are clipped away.
        """
        arr = np.asarray(coords, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] != 2 or arr.shape[0] < 2:
            raise ValueError("coords must be an (n >= 2, 2) vertex sequence")
        if closed:
            starts = np.roll(arr, 1, axis=0)
            ends = arr
        else:
            starts = arr[:-1]
            ends = arr[1:]
        self.draw_edges_array(np.hstack([starts, ends]))

    def draw_edges_array(self, edges_data: np.ndarray, key: object = None) -> None:
        """Render an ``(E, 4)`` array of data-space segments.

        The vectorized equivalent of :meth:`draw_polygon_edges` for callers
        that cache edge arrays (``Polygon.edges_array``); the transform is
        affine, so edges map to window space in two array operations.

        When ``key`` identifies the segment content (the owning polygon's
        digest) and a render cache is installed, a repeated anti-aliased
        (content, window, footprint) draw replays its memoized coverage
        mask: the transform/clip/rasterize stages are skipped, while the
        per-fragment operations (depth, stencil, blend, logic, color
        write) run live against the current buffers, so the resulting
        buffer contents are bit-identical to an uncached draw.
        """
        self.state.validate(self.limits)
        self.counters.draw_calls += 1
        state = self.state
        recorder = current_recorder()
        if recorder is not None:
            recorder.on_draw_edges(self, edges_data)

        cache = self.render_cache
        cache_key = None
        if cache is not None and key is not None and state.antialias:
            cache_key = self._render_cache_key(key)
            mask = cache.lookup(cache_key)
            if mask is not None:
                self.counters.pixels_written += self._apply_fragment_ops(mask)
                return

        # Transformation stage.
        edges = (edges_data - self._offset4) * self._scale  # (E, 4): x0 y0 x1 y1

        # Clipping stage: reject edges whose widened footprint cannot touch
        # the viewport.
        pad = max(state.line_width, state.point_size) + 1.0
        x_lo = np.minimum(edges[:, 0], edges[:, 2])
        x_hi = np.maximum(edges[:, 0], edges[:, 2])
        y_lo = np.minimum(edges[:, 1], edges[:, 3])
        y_hi = np.maximum(edges[:, 1], edges[:, 3])
        keep = (
            (x_hi >= -pad)
            & (x_lo <= self.width + pad)
            & (y_hi >= -pad)
            & (y_lo <= self.height + pad)
        )
        kept = int(np.count_nonzero(keep))
        self.counters.edges_rendered += kept
        self.counters.edges_clipped_away += edges.shape[0] - kept
        if kept == 0:
            if cache_key is not None:
                cache.store(
                    cache_key, np.zeros((self.height, self.width), dtype=bool)
                )
            return
        if kept != edges.shape[0]:
            edges = edges[keep]

        # Rasterization stage: both rules produce the draw call's coverage
        # mask (its fragment set), so every draw type flows through the
        # same per-fragment pipeline.  Historically the basic path wrote
        # fb.color directly, silently skipping depth/stencil/blend/logic
        # state that only the anti-aliased path honored.
        if state.antialias:
            mask = edges_coverage_mask(
                (self.height, self.width),
                edges,
                width_px=state.line_width,
                cap_points=state.cap_points,
            )
            if cache_key is not None:
                cache.store(cache_key, mask)
        elif self.raster_backend == "reference":
            mask = lines_basic_coverage_mask_reference(
                (self.height, self.width), edges
            )
        else:
            mask = lines_basic_coverage_mask((self.height, self.width), edges)
        self.counters.pixels_written += self._apply_fragment_ops(mask)

    def _apply_fragment_ops(self, mask: np.ndarray) -> int:
        """Apply the per-fragment pipeline to one draw call's coverage mask.

        Order follows the GL fragment pipeline for the operations this
        simulation models: depth test first, then stencil update, depth
        write, and finally the color write (replace, additive blend, or
        logical OR).  Returns the number of fragments that survived.
        """
        state = self.state
        fb = self.fb
        if state.depth_test is not None:
            if state.depth_test != "equal":
                raise ValueError(f"unsupported depth func {state.depth_test!r}")
            mask = mask & (fb.depth == np.float32(state.depth_value))
        written = int(np.count_nonzero(mask))
        if written == 0:
            return 0
        if state.stencil_op is not None:
            if state.stencil_op != "incr":
                raise ValueError(f"unsupported stencil op {state.stencil_op!r}")
            plane = fb.stencil
            selected = plane[mask]
            # Saturating increment, per the GL_INCR specification.
            plane[mask] = np.where(selected == 255, selected, selected + 1)
        if state.depth_write:
            fb.depth[mask] = np.float32(state.depth_value)
        if state.color_write:
            if state.logic_op is not None:
                if state.logic_op != "or":
                    raise ValueError(f"unsupported logic op {state.logic_op!r}")
                bits = fb.color.astype(np.uint8)
                bits[mask] |= np.uint8(int(state.color))
                fb.color[:] = bits
            elif state.blend:
                fb.color[mask] += np.float32(state.color)
            else:
                fb.color[mask] = state.color
        return written

    def draw_point(self, x: float, y: float) -> None:
        """Render a single point under the current state.

        The point's coverage mask (one truncated pixel, or the wide
        conservative square) goes through :meth:`_apply_fragment_ops`
        like every other draw, so depth/stencil/blend/logic/color-mask
        state applies to points too.
        """
        self.state.validate(self.limits)
        self.counters.draw_calls += 1
        self.counters.points_rendered += 1
        recorder = current_recorder()
        if recorder is not None:
            recorder.on_draw_point(self, x, y)
        wx, wy = self.data_to_window(x, y)
        mask = np.zeros((self.height, self.width), dtype=bool)
        if self.state.antialias and self.state.point_size > 1.0:
            rasterize_point_conservative(
                mask, wx, wy, self.state.point_size, color=True
            )
        else:
            rasterize_point_basic(mask, wx, wy, color=True)
        self.counters.pixels_written += self._apply_fragment_ops(mask)

    def draw_filled_polygon(self, coords: Coords) -> None:
        """Render a filled polygon (convex or not, via even-odd fill).

        Real hardware only fills convex polygons; the paper's technique
        avoids filling entirely.  The simulation offers it for completeness
        (visualizations, the interior-filter reference path).  Like edge
        draws, the fill produces a coverage mask that flows through
        :meth:`_apply_fragment_ops` under the current state.
        """
        self.state.validate(self.limits)
        arr = np.asarray(coords, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] != 2 or arr.shape[0] < 3:
            raise ValueError("polygon needs at least 3 vertices")
        self.counters.draw_calls += 1
        recorder = current_recorder()
        if recorder is not None:
            recorder.on_draw_polygon(self, coords)

        # Transformation stage (vectorized; bit-identical to per-vertex
        # data_to_window).
        window = (arr - self._offset4[:2]) * self._scale

        # Clipping stage *accounting*: edges whose footprint cannot touch
        # the viewport count as clipped away, exactly like the edge path,
        # preserving the submitted == rendered + clipped-away identity
        # across draw types.  The fill itself still sees every vertex -
        # an edge far outside the viewport can bound interior that covers
        # it (hardware would clip-and-retessellate; the even-odd parity
        # over in-buffer pixel centers is equivalent).
        starts = np.roll(window, 1, axis=0)
        pad = 1.0  # fill coverage reaches < 1 px beyond an edge's bbox
        x_lo = np.minimum(starts[:, 0], window[:, 0])
        x_hi = np.maximum(starts[:, 0], window[:, 0])
        y_lo = np.minimum(starts[:, 1], window[:, 1])
        y_hi = np.maximum(starts[:, 1], window[:, 1])
        keep = (
            (x_hi >= -pad)
            & (x_lo <= self.width + pad)
            & (y_hi >= -pad)
            & (y_lo <= self.height + pad)
        )
        kept = int(np.count_nonzero(keep))
        self.counters.edges_rendered += kept
        self.counters.edges_clipped_away += arr.shape[0] - kept

        # Rasterization stage: even-odd coverage mask of the whole draw.
        if self.raster_backend == "reference":
            mask = polygon_coverage_mask((self.height, self.width), window)
        else:
            mask = polygon_fill_coverage_mask((self.height, self.width), window)
        self.counters.pixels_written += self._apply_fragment_ops(mask)
