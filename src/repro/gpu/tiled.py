"""Tiled batch rendering: many pairwise tests in one atlas submission.

The paper's cost trade-off (section 4.3) exists because every hardware test
pays a fixed per-submission price - draw-call setup, buffer clears,
accumulation transfers, and the Minmax round-trip - on top of the per-pixel
work.  Real GPU join pipelines amortize that price by batching many
independent tests into one submission (3DPipe's pipelined spatial join;
raster-interval approximations reused across a whole join).  This module is
that batching layer for the simulated card:

* each candidate pair gets one **tile** of a shared atlas frame buffer;
* each tile carries its own viewport transform (the pair's projection
  window, exactly as :meth:`~repro.gpu.pipeline.GraphicsPipeline.set_data_window`
  would compute it);
* the edges of *all* pairs' first boundaries are rasterized in one bulk
  call (:func:`~repro.gpu.raster_bulk.edges_coverage_masks_grouped`), then
  all second boundaries likewise;
* one **per-tile Minmax reduction** over the atlas returns every pair's
  verdict at once.

Conservativeness is preserved tile by tile: a tile's pixels are exactly the
pixels the per-pair pipeline would have rendered (tile-local coordinates,
identical footprint math), and the per-tile maximum of the accumulated
image is exactly the whole-buffer Minmax of the per-pair test.  Tiles never
share pixels, so batching cannot create or destroy overlap - batched
verdicts are bit-identical to the serial loop's.
"""

from __future__ import annotations

import math
import time
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..geometry.rect import Rect
from ..obs.capture import current_recorder
from ..obs.metrics import current_registry
from .framebuffer import Framebuffer
from .pipeline import GraphicsPipeline, uniform_window_scale
from .raster_bulk import edges_coverage_masks_grouped

#: Gray level each boundary is rendered with (Algorithm 3.1's 0.5).
_EDGE_COLOR = np.float32(0.5)


class TiledPipeline:
    """Batches pair tests as tiles of one atlas frame buffer.

    Wraps a :class:`~repro.gpu.pipeline.GraphicsPipeline` whose viewport
    defines the tile size; the atlas is a ``grid_cols x grid_rows`` grid of
    such tiles, bounded by the device viewport limit and ``max_tiles``.
    All primitive-operation accounting lands in the *base* pipeline's
    :class:`~repro.gpu.costmodel.CostCounters`, so engines report one
    consistent cost stream whether they test pairs one by one or batched.
    """

    def __init__(self, base: GraphicsPipeline, max_tiles: int = 256) -> None:
        if max_tiles < 1:
            raise ValueError(f"max_tiles must be >= 1, got {max_tiles}")
        self.base = base
        self.max_tiles = max_tiles
        self.tile_width = base.width
        self.tile_height = base.height
        limit = base.limits.max_viewport
        max_cols = max(1, limit // self.tile_width)
        max_rows = max(1, limit // self.tile_height)
        side = max(1, math.isqrt(max_tiles))
        self.grid_cols = min(side, max_cols)
        self.grid_rows = min(
            max(1, -(-max_tiles // self.grid_cols)), max_rows
        )
        #: Pair tests one atlas submission can carry.
        self.capacity = self.grid_cols * self.grid_rows
        self.fb = Framebuffer(
            self.grid_cols * self.tile_width, self.grid_rows * self.tile_height
        )

    @property
    def counters(self):
        """The shared cost counters (the base pipeline's)."""
        return self.base.counters

    # -- the batched test -------------------------------------------------

    def overlap_flags(
        self,
        edges_a: Sequence[np.ndarray],
        edges_b: Sequence[np.ndarray],
        windows: Sequence[Rect],
        widths_px,
        cap_points: bool,
        threshold: float,
    ) -> np.ndarray:
        """One overlap verdict per pair: ``True`` iff boundaries share a pixel.

        ``edges_a[k]`` / ``edges_b[k]`` are the two boundaries' ``(E, 4)``
        data-space edge arrays, ``windows[k]`` the pair's projection window,
        and ``widths_px`` the rendered line width (scalar, or one per pair
        for distance tests whose projections differ).  Pairs are packed
        ``capacity`` tiles at a time; each sub-batch is one atlas
        submission traced as a ``gpu.tile_batch`` span.
        """
        n = len(windows)
        if not (len(edges_a) == len(edges_b) == n):
            raise ValueError("edges_a, edges_b, and windows must align")
        widths = np.asarray(widths_px, dtype=np.float64)
        if widths.ndim not in (0, 1):
            raise ValueError("widths_px must be a scalar or a 1-d array")
        if widths.ndim == 1 and widths.shape[0] != n:
            raise ValueError(
                f"widths_px has {widths.shape[0]} entries for {n} pairs"
            )
        flags = np.zeros(n, dtype=bool)
        for start in range(0, n, self.capacity):
            stop = min(start + self.capacity, n)
            w = widths if widths.ndim == 0 else widths[start:stop]
            began = time.perf_counter()
            sub_flags, edge_count = self._run_batch(
                edges_a[start:stop],
                edges_b[start:stop],
                windows[start:stop],
                w,
                cap_points,
                threshold,
            )
            flags[start:stop] = sub_flags
            recorder = current_recorder()
            if recorder is not None:
                recorder.on_tile_batch(
                    self,
                    edges_a[start:stop],
                    edges_b[start:stop],
                    windows[start:stop],
                    w,
                    cap_points,
                    threshold,
                    sub_flags,
                )
            # Imported lazily: pulling repro.exec at module import time
            # would cycle back into repro.core -> repro.gpu.
            from ..exec.trace import current_tracer

            tracer = current_tracer()
            if tracer is not None:
                tracer.record(
                    "gpu.tile_batch",
                    time.perf_counter() - began,
                    tiles=stop - start,
                    edges=edge_count,
                    atlas=f"{self.fb.width}x{self.fb.height}",
                )
            registry = current_registry()
            if registry is not None:
                # Batch-shape families: how full each atlas submission ran.
                # A fleet of mostly-full batches means the fixed per-
                # submission price (section 4.3) is well amortized; lots of
                # fractional tail batches means capacity is mis-sized for
                # the candidate stream.  These depend on how the caller
                # slices the candidate list, so sharded runs may bucket
                # them differently than serial ones (see repro.exec.parallel).
                registry.histogram("tiles_per_batch").observe(stop - start)
                registry.histogram("atlas_occupancy").observe(
                    (stop - start) / self.capacity
                )
        return flags

    def _run_batch(
        self,
        edges_a: Sequence[np.ndarray],
        edges_b: Sequence[np.ndarray],
        windows: Sequence[Rect],
        widths,
        cap_points: bool,
        threshold: float,
    ) -> Tuple[np.ndarray, int]:
        """Render one atlas batch (<= capacity pairs) and reduce per tile."""
        k = len(windows)
        counters = self.base.counters
        # Per-tile viewport transforms, exactly as set_data_window computes
        # them for the per-pair path.
        scales = np.array(
            [
                uniform_window_scale(self.tile_width, self.tile_height, w)
                for w in windows
            ],
            dtype=np.float64,
        )
        offsets = np.array(
            [[w.xmin, w.ymin, w.xmin, w.ymin] for w in windows],
            dtype=np.float64,
        )
        pads = (widths if isinstance(widths, np.ndarray) else np.float64(widths)) + 1.0

        masks_a = self._bulk_rasterize(
            edges_a, scales, offsets, pads, widths, cap_points
        )
        masks_b = self._bulk_rasterize(
            edges_b, scales, offsets, pads, widths, cap_points
        )
        edge_count = sum(int(e.shape[0]) for e in edges_a) + sum(
            int(e.shape[0]) for e in edges_b
        )

        # Atlas assembly: clear once for the whole batch, then the two
        # accumulation transfers and the return (Algorithm 3.1 steps
        # 2.2-2.7 at batch granularity).
        self.fb.clear_color()
        counters.buffer_clears += 1
        counters.pixels_cleared += self.fb.width * self.fb.height
        tiles = np.zeros(
            (self.capacity, self.tile_height, self.tile_width),
            dtype=np.float32,
        )
        tiles[:k] = (
            masks_a.astype(np.float32) + masks_b.astype(np.float32)
        ) * _EDGE_COLOR
        self.fb.color[:] = (
            tiles.reshape(
                self.grid_rows, self.grid_cols, self.tile_height, self.tile_width
            )
            .transpose(0, 2, 1, 3)
            .reshape(self.fb.height, self.fb.width)
        )
        counters.accum_ops += 3

        # Per-tile Minmax reduction over the atlas: one scan returns every
        # tile's maximum accumulated gray level.
        tile_max = (
            self.fb.color.reshape(
                self.grid_rows, self.tile_height, self.grid_cols, self.tile_width
            )
            .max(axis=(1, 3))
            .reshape(-1)[:k]
        )
        counters.minmax_ops += 1
        counters.pixels_scanned += self.fb.width * self.fb.height
        counters.tile_batches += 1
        counters.tiles_packed += k
        return tile_max >= np.float32(threshold), edge_count

    def _bulk_rasterize(
        self,
        edge_sets: Sequence[np.ndarray],
        scales: np.ndarray,
        offsets: np.ndarray,
        pads,
        widths,
        cap_points: bool,
    ) -> np.ndarray:
        """One bulk draw call over all tiles' edges -> (K, th, tw) masks.

        Transform and clip run per edge with that edge's tile projection -
        elementwise the same float operations the per-pair pipeline
        performs - then every surviving edge rasterizes in one grouped
        coverage pass.
        """
        k = len(edge_sets)
        counters = self.base.counters
        counters.draw_calls += 1
        counts = np.array([e.shape[0] for e in edge_sets], dtype=np.intp)
        total = int(counts.sum())
        if total == 0:
            return np.zeros(
                (k, self.tile_height, self.tile_width), dtype=bool
            )
        gid = np.repeat(np.arange(k, dtype=np.intp), counts)
        stacked = np.concatenate(
            [e for e in edge_sets if e.shape[0]], axis=0
        )
        edges = (stacked - offsets[gid]) * scales[gid, None]

        # Clipping stage, per tile-local viewport (identical test to
        # GraphicsPipeline.draw_edges_array).
        pad = pads[gid] if isinstance(pads, np.ndarray) and pads.ndim else pads
        x_lo = np.minimum(edges[:, 0], edges[:, 2])
        x_hi = np.maximum(edges[:, 0], edges[:, 2])
        y_lo = np.minimum(edges[:, 1], edges[:, 3])
        y_hi = np.maximum(edges[:, 1], edges[:, 3])
        keep = (
            (x_hi >= -pad)
            & (x_lo <= self.tile_width + pad)
            & (y_hi >= -pad)
            & (y_lo <= self.tile_height + pad)
        )
        kept = int(np.count_nonzero(keep))
        counters.edges_rendered += kept
        counters.edges_clipped_away += total - kept
        if kept == 0:
            return np.zeros(
                (k, self.tile_height, self.tile_width), dtype=bool
            )
        kept_sizes = np.bincount(gid[keep], minlength=k)
        masks = edges_coverage_masks_grouped(
            (self.tile_height, self.tile_width),
            edges[keep],
            kept_sizes,
            widths,
            cap_points=cap_points,
        )
        counters.pixels_written += int(np.count_nonzero(masks))
        return masks

    # -- introspection ----------------------------------------------------

    def read_atlas(self) -> np.ndarray:
        """Full atlas readback (the expensive path; debug/visualization)."""
        counters = self.base.counters
        counters.readback_ops += 1
        counters.pixels_transferred += self.fb.width * self.fb.height
        return self.fb.read_pixels("color")

    def tile_image(self, index: int) -> np.ndarray:
        """One tile of the last batch's atlas (from :meth:`read_atlas`)."""
        if not 0 <= index < self.capacity:
            raise IndexError(f"tile {index} outside capacity {self.capacity}")
        row, col = divmod(index, self.grid_cols)
        atlas = self.read_atlas()
        return atlas[
            row * self.tile_height : (row + 1) * self.tile_height,
            col * self.tile_width : (col + 1) * self.tile_width,
        ]


def atlas_layout(
    resolution: int, max_tiles: int = 256, max_viewport: Optional[int] = None
) -> Tuple[int, int]:
    """(cols, rows) of the atlas grid a TiledPipeline would allocate."""
    limit = max_viewport if max_viewport is not None else 2048
    max_side = max(1, limit // resolution)
    side = max(1, math.isqrt(max_tiles))
    cols = min(side, max_side)
    rows = min(max(1, -(-max_tiles // cols)), max_side)
    return cols, rows


__all__: List[str] = ["TiledPipeline", "atlas_layout"]
