"""Simulated graphics hardware.

A software stand-in for the OpenGL pipeline + consumer graphics card the
paper runs on (GeForce4 Ti4600): frame buffers (color + accumulation),
viewport projection, the OpenGL-spec point / line / anti-aliased-line /
polygon rasterization rules of the paper's section 2.2, the hardware Minmax
readback of section 3.2, and the device limits (maximum anti-aliased line
width) whose effects section 4.4 measures.  See DESIGN.md section 2 for why
this substitution preserves the paper's correctness and cost-shape claims.
"""

from .costmodel import DOCUMENTED_FREE, CostCounters, GpuCostModel
from .distance_field import distance_field, min_center_distance, within_pixel_distance
from .framebuffer import Framebuffer
from .pipeline import GraphicsPipeline
from .raster_line import (
    aa_rect_axes,
    rasterize_line_aa_conservative,
    rasterize_line_basic,
)
from .raster_point import rasterize_point_basic, rasterize_point_conservative
from .raster_bulk import (
    edges_coverage_mask,
    edges_coverage_masks_grouped,
    rasterize_edges_bulk,
)
from .raster_polygon import (
    polygon_coverage_mask,
    rasterize_polygon_evenodd,
    scanline_row_bounds,
)
from .raster_vector import (
    RASTER_BACKENDS,
    lines_basic_coverage_mask,
    lines_basic_coverage_mask_reference,
    polygon_fill_coverage_mask,
    ring_boundary_coverage_mask,
)
from .tiled import TiledPipeline, atlas_layout
from .voronoi import discrete_voronoi, site_distances_at
from .state import (
    DEFAULT_AA_LINE_WIDTH,
    EDGE_COLOR,
    OVERLAP_COLOR,
    DeviceLimits,
    RasterState,
)

__all__ = [
    "CostCounters",
    "DEFAULT_AA_LINE_WIDTH",
    "DOCUMENTED_FREE",
    "DeviceLimits",
    "EDGE_COLOR",
    "Framebuffer",
    "GpuCostModel",
    "GraphicsPipeline",
    "OVERLAP_COLOR",
    "RASTER_BACKENDS",
    "RasterState",
    "TiledPipeline",
    "aa_rect_axes",
    "atlas_layout",
    "discrete_voronoi",
    "distance_field",
    "edges_coverage_mask",
    "edges_coverage_masks_grouped",
    "lines_basic_coverage_mask",
    "lines_basic_coverage_mask_reference",
    "min_center_distance",
    "rasterize_edges_bulk",
    "site_distances_at",
    "within_pixel_distance",
    "polygon_coverage_mask",
    "polygon_fill_coverage_mask",
    "rasterize_line_aa_conservative",
    "rasterize_line_basic",
    "rasterize_point_basic",
    "rasterize_point_conservative",
    "rasterize_polygon_evenodd",
    "ring_boundary_coverage_mask",
    "scanline_row_bounds",
]
