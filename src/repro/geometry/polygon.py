"""Simple (and possibly non-simple) polygons.

The paper's datasets contain concave and occasionally non-simple polygons
(footnote 1): self-intersecting boundaries and repeated vertices occur in the
real land-cover data.  ``Polygon`` therefore makes no simplicity assumption;
predicates that require simplicity say so explicitly, and
:meth:`Polygon.is_simple` is available to check.
"""

from __future__ import annotations

import hashlib
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from .point import Point
from .point_in_polygon import PointLocation, locate_point
from .rect import Rect
from .segment import Segment


class Polygon:
    """A closed polygon defined by its boundary vertices.

    The boundary is implicitly closed: an edge connects the last vertex back
    to the first.  Vertices are stored as given (no deduplication or
    reorientation) to stay faithful to how GIS sources deliver geometry.
    """

    __slots__ = (
        "_vertices",
        "_mbr",
        "_signed_area",
        "_coords_array",
        "_edges_array",
        "_digest",
    )

    def __init__(self, vertices: Sequence[Point]) -> None:
        if len(vertices) < 3:
            raise ValueError(
                f"polygon needs at least 3 vertices, got {len(vertices)}"
            )
        object.__setattr__(self, "_vertices", tuple(vertices))
        object.__setattr__(self, "_mbr", None)
        object.__setattr__(self, "_signed_area", None)
        object.__setattr__(self, "_coords_array", None)
        object.__setattr__(self, "_edges_array", None)
        object.__setattr__(self, "_digest", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Polygon is immutable")

    def __reduce__(self):
        # Pickle as (class, vertices): the cached MBR/area/arrays rebuild
        # lazily and deterministically on the receiving side.
        return (Polygon, (list(self._vertices),))

    @staticmethod
    def from_coords(coords: Sequence[Tuple[float, float]]) -> "Polygon":
        """Build a polygon from ``[(x, y), ...]`` coordinate pairs."""
        return Polygon([Point(x, y) for x, y in coords])

    # -- basic accessors -----------------------------------------------------

    @property
    def vertices(self) -> Tuple[Point, ...]:
        return self._vertices

    @property
    def num_vertices(self) -> int:
        """Vertex count: the complexity measure used throughout the paper."""
        return len(self._vertices)

    def __len__(self) -> int:
        return len(self._vertices)

    def __repr__(self) -> str:
        return f"Polygon(<{self.num_vertices} vertices>, mbr={self.mbr!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polygon):
            return NotImplemented
        return self._vertices == other._vertices

    def __hash__(self) -> int:
        return hash(self._vertices)

    @property
    def mbr(self) -> Rect:
        """Minimum bounding rectangle (cached)."""
        if self._mbr is None:
            object.__setattr__(self, "_mbr", Rect.from_points(self._vertices))
        return self._mbr

    def edges(self) -> Iterator[Tuple[Point, Point]]:
        """Iterate boundary edges as ``(start, end)`` pairs, closing the ring."""
        verts = self._vertices
        prev = verts[-1]
        for v in verts:
            yield (prev, v)
            prev = v

    def edge_segments(self) -> List[Segment]:
        """Boundary edges as :class:`Segment` objects."""
        return [Segment(a, b) for a, b in self.edges()]

    def coords(self) -> List[Tuple[float, float]]:
        """Vertices as plain ``(x, y)`` tuples (for rasterization and IO)."""
        return [(p.x, p.y) for p in self._vertices]

    @property
    def coords_array(self) -> np.ndarray:
        """Vertices as a read-only ``(n, 2)`` float64 array (cached).

        The hardware path transforms and rasterizes whole boundaries at
        once; caching the array amortizes the conversion over the many
        pairwise tests each polygon participates in.
        """
        if self._coords_array is None:
            arr = np.array(
                [(p.x, p.y) for p in self._vertices], dtype=np.float64
            )
            arr.setflags(write=False)
            object.__setattr__(self, "_coords_array", arr)
        return self._coords_array

    @property
    def edges_array(self) -> np.ndarray:
        """Boundary edges as a read-only ``(n, 4)`` array of
        ``[x0, y0, x1, y1]`` rows, closing the ring (cached).

        Edge ``i`` runs from vertex ``i-1`` to vertex ``i``, matching
        :meth:`edges`.  The hardware path transforms this array with two
        vectorized operations per draw call instead of rebuilding it.
        """
        if self._edges_array is None:
            coords = self.coords_array
            arr = np.hstack([np.roll(coords, 1, axis=0), coords])
            arr.setflags(write=False)
            object.__setattr__(self, "_edges_array", arr)
        return self._edges_array

    @property
    def digest(self) -> bytes:
        """SHA-256 over the vertex coordinate bytes (computed once, cached).

        A *content* identity: two polygon objects with bit-identical vertex
        sequences share a digest, however they were constructed.  The cache
        layer (:mod:`repro.cache`) keys on it, which is what lets memoized
        verdicts and renders apply across duplicate geometries, not just
        across repeated references to one object.
        """
        if self._digest is None:
            digest = hashlib.sha256(self.coords_array.tobytes()).digest()
            object.__setattr__(self, "_digest", digest)
        return self._digest

    # -- measures --------------------------------------------------------------

    @property
    def signed_area(self) -> float:
        """Shoelace signed area; positive for counter-clockwise rings."""
        if self._signed_area is None:
            verts = self._vertices
            total = 0.0
            ax, ay = verts[-1].x, verts[-1].y
            for v in verts:
                total += ax * v.y - v.x * ay
                ax, ay = v.x, v.y
            object.__setattr__(self, "_signed_area", total * 0.5)
        return self._signed_area

    @property
    def area(self) -> float:
        return abs(self.signed_area)

    @property
    def is_ccw(self) -> bool:
        return self.signed_area > 0.0

    @property
    def perimeter(self) -> float:
        return sum(a.distance_to(b) for a, b in self.edges())

    @property
    def centroid(self) -> Point:
        """Area centroid; falls back to the vertex mean for zero-area rings."""
        a6 = self.signed_area * 6.0
        if a6 == 0.0:
            n = self.num_vertices
            return Point(
                sum(p.x for p in self._vertices) / n,
                sum(p.y for p in self._vertices) / n,
            )
        cx = cy = 0.0
        verts = self._vertices
        px, py = verts[-1].x, verts[-1].y
        for v in verts:
            w = px * v.y - v.x * py
            cx += (px + v.x) * w
            cy += (py + v.y) * w
            px, py = v.x, v.y
        return Point(cx / a6, cy / a6)

    # -- topology ---------------------------------------------------------------

    def locate_point(self, p: Point) -> PointLocation:
        """Classify ``p`` as inside / outside / on the boundary."""
        return locate_point(p, self._vertices)

    def contains_point(self, p: Point) -> bool:
        """True when ``p`` is inside or on the boundary (even-odd rule)."""
        return locate_point(p, self._vertices) is not PointLocation.OUTSIDE

    def is_simple(self) -> bool:
        """True when no two non-adjacent edges intersect and adjacent edges
        meet only at their shared endpoint.

        Delegates to the Shamos-Hoey sweep; imported lazily to avoid a module
        cycle (the sweep operates on polygons' edges).
        """
        from .shamos_hoey import polygon_is_simple

        return polygon_is_simple(self)

    # -- derived polygons ----------------------------------------------------------

    def reversed(self) -> "Polygon":
        """Same ring with opposite orientation."""
        return Polygon(tuple(reversed(self._vertices)))

    def translated(self, dx: float, dy: float) -> "Polygon":
        return Polygon([Point(p.x + dx, p.y + dy) for p in self._vertices])

    def scaled(self, factor: float, origin: Point | None = None) -> "Polygon":
        o = origin if origin is not None else self.mbr.center
        return Polygon(
            [
                Point(o.x + (p.x - o.x) * factor, o.y + (p.y - o.y) * factor)
                for p in self._vertices
            ]
        )


def rect_to_polygon(rect: Rect) -> Polygon:
    """The rectangle as a counter-clockwise polygon."""
    return Polygon(rect.corners())
