"""Frontier-chain ``minDist``: the paper's software distance test.

Section 4.1.1 describes the software distance algorithm as "a modified
version of the minDist algorithm by Chan [4]", which

1. identifies a *frontier chain* in each polygon - the stretch of boundary
   facing the other polygon (bold edges in Figure 9c) - and computes the
   minimum distance between the chains instead of the whole boundaries, and

2. adds two optimizations: (a) for within-distance queries, return as soon
   as the running distance drops to the query distance ``D``; (b) extend the
   MBRs by ``D`` in each direction and only compare the parts of the frontier
   chains that intersect the extended MBRs (Figure 9d).  The paper measured
   (b) at a 2x to 6x computational-cost reduction.

The frontier chain here is derived from a cheap upper bound: a linear pass
finds the vertex of each polygon nearest the other's MBR and scores it
against the other boundary, and every edge whose MBR cannot beat that bound
is excluded.  Edge pairs are then compared best-first with MBR-distance
pruning, which preserves exactness while usually touching a small fraction
of the quadratic pair space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .distance import either_contains
from .point import Point
from .polygon import Polygon
from .rect import Rect
from .segment import point_segment_distance, segment_segment_distance


@dataclass
class MinDistStats:
    """Work counters for ablation benchmarks of the minDist optimizations."""

    edge_pairs_total: int = 0
    #: Edges visited by linear passes (flattening, initial bound, chain
    #: filtering) - for cost modeling.
    edges_scanned: int = 0
    frontier_pairs: int = 0
    pairs_tested: int = 0
    early_exits: int = 0

    def merge(self, other: "MinDistStats") -> None:
        self.edge_pairs_total += other.edge_pairs_total
        self.edges_scanned += other.edges_scanned
        self.frontier_pairs += other.frontier_pairs
        self.pairs_tested += other.pairs_tested
        self.early_exits += other.early_exits


# Flattened edge record: (ax, ay, bx, by, xmin, ymin, xmax, ymax)
_Edge = Tuple[float, float, float, float, float, float, float, float]


def _flat_edges(polygon: Polygon) -> List[_Edge]:
    out: List[_Edge] = []
    verts = polygon.vertices
    ax, ay = verts[-1].x, verts[-1].y
    for v in verts:
        bx, by = v.x, v.y
        out.append(
            (
                ax,
                ay,
                bx,
                by,
                min(ax, bx),
                min(ay, by),
                max(ax, bx),
                max(ay, by),
            )
        )
        ax, ay = bx, by
    return out


def _rect_rect_distance(
    axmin: float, aymin: float, axmax: float, aymax: float, r: Rect
) -> float:
    dx = max(axmin - r.xmax, 0.0, r.xmin - axmax)
    dy = max(aymin - r.ymax, 0.0, r.ymin - aymax)
    return math.hypot(dx, dy)


def _edge_edge_mbr_distance(e: _Edge, f: _Edge) -> float:
    dx = max(e[4] - f[6], 0.0, f[4] - e[6])
    dy = max(e[5] - f[7], 0.0, f[5] - e[7])
    return math.hypot(dx, dy)


def _initial_upper_bound(a: Polygon, b: Polygon) -> float:
    """Distance from the vertex of ``a`` nearest ``b``'s MBR to ``b``'s boundary.

    Linear in ``len(a) + len(b)`` and usually tight enough to shrink the
    frontier chains to short stretches of boundary.
    """
    b_mbr = b.mbr
    best_vertex: Optional[Point] = None
    best_rect_d = math.inf
    for v in a.vertices:
        d = b_mbr.distance_to_point(v)
        if d < best_rect_d:
            best_rect_d = d
            best_vertex = v
    assert best_vertex is not None
    bound = math.inf
    for qa, qb in b.edges():
        d = point_segment_distance(best_vertex, qa, qb)
        if d < bound:
            bound = d
            if bound == 0.0:
                break
    return bound


def min_boundary_distance(
    a: Polygon,
    b: Polygon,
    early_exit_at: Optional[float] = None,
    use_frontier: bool = True,
    use_extended_mbr: bool = True,
    stats: Optional[MinDistStats] = None,
) -> float:
    """Exact minimum distance between the boundaries of ``a`` and ``b``.

    ``early_exit_at`` enables the paper's within-distance optimization: the
    search stops (returning the current, possibly non-minimal, distance) as
    soon as the running minimum is ``<= early_exit_at``.  ``use_frontier``
    and ``use_extended_mbr`` toggle the two pruning stages for ablations;
    with both off the routine degenerates to the quadratic reference scan.
    """
    edges_a = _flat_edges(a)
    edges_b = _flat_edges(b)
    if stats is not None:
        stats.edge_pairs_total += len(edges_a) * len(edges_b)
        # Linear passes: flatten + initial bound scan both boundaries.
        stats.edges_scanned += 2 * (len(edges_a) + len(edges_b))

    upper = _initial_upper_bound(a, b)
    upper = min(upper, _initial_upper_bound(b, a))
    target = early_exit_at if early_exit_at is not None else -math.inf
    if upper <= target:
        if stats is not None:
            stats.early_exits += 1
        return upper

    if use_frontier:
        # Frontier chains: edges that could possibly realize a distance <= upper.
        edges_a = [
            e
            for e in edges_a
            if _rect_rect_distance(e[4], e[5], e[6], e[7], b.mbr) <= upper
        ]
        edges_b = [
            e
            for e in edges_b
            if _rect_rect_distance(e[4], e[5], e[6], e[7], a.mbr) <= upper
        ]
    if use_extended_mbr:
        # Figure 9d: only the stretches of the frontier chains within the
        # other MBR extended by the pruning radius can matter.
        radius = upper if early_exit_at is None else min(upper, early_exit_at)
        ext_b = b.mbr.expand(radius)
        ext_a = a.mbr.expand(radius)
        edges_a = [
            e
            for e in edges_a
            if e[4] <= ext_b.xmax
            and ext_b.xmin <= e[6]
            and e[5] <= ext_b.ymax
            and ext_b.ymin <= e[7]
        ]
        edges_b = [
            e
            for e in edges_b
            if e[4] <= ext_a.xmax
            and ext_a.xmin <= e[6]
            and e[5] <= ext_a.ymax
            and ext_a.ymin <= e[7]
        ]
    if stats is not None:
        stats.frontier_pairs += len(edges_a) * len(edges_b)

    best = upper
    tested = 0
    for e in edges_a:
        # Skip whole rows that cannot beat the running best.
        if _rect_rect_distance(e[4], e[5], e[6], e[7], b.mbr) > best:
            continue
        pa = Point(e[0], e[1])
        pb = Point(e[2], e[3])
        for f in edges_b:
            if _edge_edge_mbr_distance(e, f) > best:
                continue
            tested += 1
            d = segment_segment_distance(pa, pb, Point(f[0], f[1]), Point(f[2], f[3]))
            if d < best:
                best = d
                if best <= target:
                    if stats is not None:
                        stats.pairs_tested += tested
                        stats.early_exits += 1
                    return best
                if best == 0.0:
                    if stats is not None:
                        stats.pairs_tested += tested
                    return 0.0
    if stats is not None:
        stats.pairs_tested += tested
    return best


def polygon_min_distance(
    a: Polygon,
    b: Polygon,
    stats: Optional[MinDistStats] = None,
) -> float:
    """Exact region-to-region distance (0 for intersecting polygons)."""
    if a.mbr.intersects(b.mbr) and either_contains(a, b):
        return 0.0
    return min_boundary_distance(a, b, stats=stats)


def polygons_within_distance(
    a: Polygon,
    b: Polygon,
    d: float,
    use_frontier: bool = True,
    use_extended_mbr: bool = True,
    stats: Optional[MinDistStats] = None,
) -> bool:
    """The paper's software within-distance test.

    MBR prefilter, containment check, then frontier-chain minDist with both
    optimizations (early exit at ``d``; extended-MBR chain clipping).
    """
    if d < 0.0:
        raise ValueError("distance must be non-negative")
    if not a.mbr.within_distance(b.mbr, d):
        return False
    if a.mbr.intersects(b.mbr) and either_contains(a, b):
        return True
    dist = min_boundary_distance(
        a,
        b,
        early_exit_at=d,
        use_frontier=use_frontier,
        use_extended_mbr=use_extended_mbr,
        stats=stats,
    )
    return dist <= d
