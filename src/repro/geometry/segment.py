"""Line segments and segment metric computations.

Segments are the unit of work for both the software plane sweep and the
hardware rasterization path (the paper renders polygons as chains of
segments, never as filled polygons, to avoid triangulation).
"""

from __future__ import annotations

import math
from typing import Iterator

from .point import Point
from .predicates import segments_intersect
from .rect import Rect


class Segment:
    """A closed line segment between two points."""

    __slots__ = ("p0", "p1")

    def __init__(self, p0: Point, p1: Point) -> None:
        object.__setattr__(self, "p0", p0)
        object.__setattr__(self, "p1", p1)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Segment is immutable")

    def __reduce__(self):
        # Explicit pickle support for the slotted immutable (see Point).
        return (Segment, (self.p0, self.p1))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Segment):
            return NotImplemented
        return self.p0 == other.p0 and self.p1 == other.p1

    def __hash__(self) -> int:
        return hash((self.p0, self.p1))

    def __repr__(self) -> str:
        return f"Segment({self.p0!r}, {self.p1!r})"

    def __iter__(self) -> Iterator[Point]:
        yield self.p0
        yield self.p1

    @property
    def length(self) -> float:
        return self.p0.distance_to(self.p1)

    @property
    def mbr(self) -> Rect:
        return Rect(
            min(self.p0.x, self.p1.x),
            min(self.p0.y, self.p1.y),
            max(self.p0.x, self.p1.x),
            max(self.p0.y, self.p1.y),
        )

    @property
    def midpoint(self) -> Point:
        return self.p0.midpoint(self.p1)

    def reversed(self) -> "Segment":
        return Segment(self.p1, self.p0)

    def intersects(self, other: "Segment") -> bool:
        """Closed-segment intersection (endpoint contact counts)."""
        return segments_intersect(self.p0, self.p1, other.p0, other.p1)


def point_segment_distance(p: Point, a: Point, b: Point) -> float:
    """Minimum distance from point ``p`` to the closed segment ``ab``."""
    ab = b - a
    denom = ab.dot(ab)
    if denom == 0.0:
        return p.distance_to(a)
    t = (p - a).dot(ab) / denom
    if t <= 0.0:
        return p.distance_to(a)
    if t >= 1.0:
        return p.distance_to(b)
    proj = Point(a.x + t * ab.x, a.y + t * ab.y)
    return p.distance_to(proj)


def segment_segment_distance(p1: Point, p2: Point, q1: Point, q2: Point) -> float:
    """Minimum distance between two closed segments (0 when they intersect).

    For disjoint segments in the plane, the minimum is always attained at an
    endpoint of one of the segments against the other segment, so four
    point-segment distances suffice.
    """
    if segments_intersect(p1, p2, q1, q2):
        return 0.0
    return min(
        point_segment_distance(p1, q1, q2),
        point_segment_distance(p2, q1, q2),
        point_segment_distance(q1, p1, p2),
        point_segment_distance(q2, p1, p2),
    )


def segment_segment_max_distance(p1: Point, p2: Point, q1: Point, q2: Point) -> float:
    """Maximum distance between points of two closed segments.

    The distance function is convex over the product of the segments, so the
    maximum lies at a pair of endpoints.  Used by the 0-Object filter to
    derive distance upper bounds from MBR edges.
    """
    return max(
        p1.distance_to(q1),
        p1.distance_to(q2),
        p2.distance_to(q1),
        p2.distance_to(q2),
    )


def segment_rect_distance(a: Point, b: Point, rect: Rect) -> float:
    """Minimum distance between the closed segment ``ab`` and ``rect``."""
    if rect.contains_point(a) or rect.contains_point(b):
        return 0.0
    corners = rect.corners()
    best = math.inf
    for i in range(4):
        c0 = corners[i]
        c1 = corners[(i + 1) % 4]
        d = segment_segment_distance(a, b, c0, c1)
        if d < best:
            best = d
            if best == 0.0:
                break
    return best
