"""Low-level geometric predicates.

These are the building blocks of every exact test in the refinement step:
orientation of point triples, point-on-segment, and segment-segment
intersection (both proper and improper).  All predicates are tolerance-free:
they use the sign of the cross product directly, which is exact whenever the
inputs are representable without rounding (integers, dyadic rationals) and is
the conventional formulation used by the plane-sweep literature the paper
builds on [3].
"""

from __future__ import annotations

from enum import IntEnum
from typing import Optional, Tuple

from .point import Point


class Orientation(IntEnum):
    """Turn direction of the point triple ``(a, b, c)``."""

    CLOCKWISE = -1
    COLLINEAR = 0
    COUNTERCLOCKWISE = 1


def cross(o: Point, a: Point, b: Point) -> float:
    """Cross product of vectors ``o->a`` and ``o->b``.

    Positive when ``a, b`` make a counter-clockwise turn around ``o``.
    """
    return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x)


def orientation(a: Point, b: Point, c: Point) -> Orientation:
    """Orientation of the ordered triple ``(a, b, c)``."""
    v = cross(a, b, c)
    if v > 0.0:
        return Orientation.COUNTERCLOCKWISE
    if v < 0.0:
        return Orientation.CLOCKWISE
    return Orientation.COLLINEAR


def on_segment(p: Point, a: Point, b: Point) -> bool:
    """True when ``p`` lies on the closed segment ``ab``.

    Assumes nothing about collinearity: both the collinearity and the
    bounding-box condition are checked.
    """
    if cross(a, b, p) != 0.0:
        return False
    return (
        min(a.x, b.x) <= p.x <= max(a.x, b.x)
        and min(a.y, b.y) <= p.y <= max(a.y, b.y)
    )


def segments_intersect(p1: Point, p2: Point, q1: Point, q2: Point) -> bool:
    """True when closed segments ``p1p2`` and ``q1q2`` share at least a point.

    This is the *improper* test: touching at endpoints and collinear overlap
    both count.  This matches the spatial-database notion of boundary
    intersection used in the refinement step.
    """
    d1 = cross(q1, q2, p1)
    d2 = cross(q1, q2, p2)
    d3 = cross(p1, p2, q1)
    d4 = cross(p1, p2, q2)

    if ((d1 > 0 and d2 < 0) or (d1 < 0 and d2 > 0)) and (
        (d3 > 0 and d4 < 0) or (d3 < 0 and d4 > 0)
    ):
        return True

    if d1 == 0 and on_segment(p1, q1, q2):
        return True
    if d2 == 0 and on_segment(p2, q1, q2):
        return True
    if d3 == 0 and on_segment(q1, p1, p2):
        return True
    if d4 == 0 and on_segment(q2, p1, p2):
        return True
    return False


def segments_intersect_properly(p1: Point, p2: Point, q1: Point, q2: Point) -> bool:
    """True only when the segments cross at a single interior point.

    Endpoint touches and collinear overlaps are *not* proper intersections.
    The ray-crossing point-in-polygon algorithm counts proper crossings.
    """
    d1 = cross(q1, q2, p1)
    d2 = cross(q1, q2, p2)
    d3 = cross(p1, p2, q1)
    d4 = cross(p1, p2, q2)
    return ((d1 > 0 and d2 < 0) or (d1 < 0 and d2 > 0)) and (
        (d3 > 0 and d4 < 0) or (d3 < 0 and d4 > 0)
    )


def segment_intersection_point(
    p1: Point, p2: Point, q1: Point, q2: Point
) -> Optional[Point]:
    """A witness intersection point of the two closed segments, or None.

    For proper crossings the unique crossing point is returned.  For improper
    contacts (endpoint touch, collinear overlap) one witness point of the
    intersection set is returned.  Callers that only need a boolean should use
    :func:`segments_intersect`, which avoids the division.
    """
    r = p2 - p1
    s = q2 - q1
    denom = r.cross(s)
    qp = q1 - p1
    if denom != 0.0:
        t = qp.cross(s) / denom
        u = qp.cross(r) / denom
        if 0.0 <= t <= 1.0 and 0.0 <= u <= 1.0:
            return Point(p1.x + t * r.x, p1.y + t * r.y)
        return None
    # Parallel segments: intersection only possible when collinear.
    if qp.cross(r) != 0.0:
        return None
    for candidate in (q1, q2, p1, p2):
        if on_segment(candidate, p1, p2) and on_segment(candidate, q1, q2):
            return candidate
    return None


def collinear_overlap(
    p1: Point, p2: Point, q1: Point, q2: Point
) -> Optional[Tuple[Point, Point]]:
    """The shared sub-segment of two collinear segments, or None.

    Returns a (possibly degenerate) pair of endpoints when the segments are
    collinear and their projections overlap.
    """
    r = p2 - p1
    if r.cross(q2 - q1) != 0.0 or r.cross(q1 - p1) != 0.0:
        return None
    # Parameterize along the dominant axis of p1p2 to order the endpoints.
    if abs(r.x) >= abs(r.y):
        key = lambda pt: pt.x  # noqa: E731 - tiny local selector
    else:
        key = lambda pt: pt.y  # noqa: E731
    lo_p, hi_p = sorted((p1, p2), key=key)
    lo_q, hi_q = sorted((q1, q2), key=key)
    lo = lo_p if key(lo_p) >= key(lo_q) else lo_q
    hi = hi_p if key(hi_p) <= key(hi_q) else hi_q
    if key(lo) > key(hi):
        return None
    return (lo, hi)
