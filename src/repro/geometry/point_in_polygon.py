"""Ray-crossing point-in-polygon test.

This is the ``O(n)`` test the paper keeps in software (Algorithm 3.1 step 1):
it is cache friendly (sequential vertex access) and cheap, and it handles the
containment case the hardware segment test cannot see (one polygon entirely
inside the other leaves no overlapping boundary pixels).
"""

from __future__ import annotations

from enum import Enum
from typing import Sequence

from .point import Point
from .predicates import on_segment


class PointLocation(Enum):
    """Topological location of a point relative to a polygon."""

    INSIDE = "inside"
    OUTSIDE = "outside"
    BOUNDARY = "boundary"


def locate_point(p: Point, vertices: Sequence[Point]) -> PointLocation:
    """Classify ``p`` against the polygon given by ``vertices``.

    Uses the even-odd (crossing-number) rule, which is the conventional
    interpretation for possibly non-simple GIS polygons: a point is inside
    when an upward ray from it properly crosses the boundary an odd number of
    times.  Points exactly on the boundary are reported as BOUNDARY, which
    the intersection test treats as intersecting (safe for spatial
    predicates).
    """
    n = len(vertices)
    if n < 3:
        raise ValueError("polygon needs at least 3 vertices")
    inside = False
    px, py = p.x, p.y
    ax, ay = vertices[-1].x, vertices[-1].y
    for v in vertices:
        bx, by = v.x, v.y
        # Boundary check first: exact on-edge points would otherwise depend
        # on floating-point crossing arithmetic.
        if (
            min(ax, bx) <= px <= max(ax, bx)
            and min(ay, by) <= py <= max(ay, by)
            and (bx - ax) * (py - ay) == (by - ay) * (px - ax)
        ):
            return PointLocation.BOUNDARY
        # Half-open rule [ay, by): each non-horizontal edge is counted once,
        # and vertices never double-count.
        if (ay > py) != (by > py):
            # x coordinate of the edge at height py, compared to px without
            # division (sign-corrected by the edge direction).
            t = (px - ax) * (by - ay) - (bx - ax) * (py - ay)
            if (t < 0) != (by < ay):
                inside = not inside
        ax, ay = bx, by
    return PointLocation.INSIDE if inside else PointLocation.OUTSIDE


def point_in_polygon(p: Point, vertices: Sequence[Point]) -> bool:
    """True when ``p`` is inside or on the boundary of the polygon."""
    return locate_point(p, vertices) is not PointLocation.OUTSIDE


def point_strictly_in_polygon(p: Point, vertices: Sequence[Point]) -> bool:
    """True only when ``p`` is in the open interior of the polygon."""
    return locate_point(p, vertices) is PointLocation.INSIDE


def any_vertex_inside(
    candidates: Sequence[Point], vertices: Sequence[Point]
) -> bool:
    """True when any of ``candidates`` lies inside/on the polygon.

    Algorithm 3.1 step 1 tests one vertex; testing against boundary-degenerate
    configurations is the caller's concern.  This helper exists for the
    containment direction of the intersection test where any single vertex
    witness suffices.
    """
    return any(
        locate_point(c, vertices) is not PointLocation.OUTSIDE for c in candidates
    )


def _debug_location_by_sampling(p: Point, vertices: Sequence[Point]) -> PointLocation:
    """Reference implementation used in tests: explicit on-segment scan plus
    a second independent crossing formulation."""
    n = len(vertices)
    for i in range(n):
        if on_segment(p, vertices[i], vertices[(i + 1) % n]):
            return PointLocation.BOUNDARY
    crossings = 0
    for i in range(n):
        a = vertices[i]
        b = vertices[(i + 1) % n]
        if (a.y <= p.y < b.y) or (b.y <= p.y < a.y):
            x_at = a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y)
            if x_at > p.x:
                crossings += 1
    return PointLocation.INSIDE if crossings % 2 == 1 else PointLocation.OUTSIDE
