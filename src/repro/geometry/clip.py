"""Clipping utilities.

Two flavors are needed by the library:

* Sutherland-Hodgman polygon-against-rectangle clipping, used by the interior
  filter tests and by examples that window a dataset.
* Cohen-Sutherland style segment-against-rectangle clipping, used when
  projecting polygon edges onto the rendering window (the simulated hardware
  clips geometry outside the viewport, paper Figure 2's "clipping" stage).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .point import Point
from .rect import Rect


def clip_polygon_to_rect(vertices: Sequence[Point], rect: Rect) -> List[Point]:
    """Sutherland-Hodgman clip of a polygon ring against a rectangle.

    Returns the clipped ring (possibly empty).  Works for concave subject
    polygons; the output may contain coincident edges where the subject
    leaves and re-enters the rectangle, which is acceptable for area and
    coverage computations.
    """

    def clip_edge(
        ring: List[Point],
        inside: "callable[[Point], bool]",
        intersect: "callable[[Point, Point], Point]",
    ) -> List[Point]:
        if not ring:
            return []
        out: List[Point] = []
        prev = ring[-1]
        prev_in = inside(prev)
        for cur in ring:
            cur_in = inside(cur)
            if cur_in:
                if not prev_in:
                    out.append(intersect(prev, cur))
                out.append(cur)
            elif prev_in:
                out.append(intersect(prev, cur))
            prev, prev_in = cur, cur_in
        return out

    def x_cross(a: Point, b: Point, x: float) -> Point:
        t = (x - a.x) / (b.x - a.x)
        return Point(x, a.y + t * (b.y - a.y))

    def y_cross(a: Point, b: Point, y: float) -> Point:
        t = (y - a.y) / (b.y - a.y)
        return Point(a.x + t * (b.x - a.x), y)

    ring = list(vertices)
    ring = clip_edge(ring, lambda p: p.x >= rect.xmin, lambda a, b: x_cross(a, b, rect.xmin))
    ring = clip_edge(ring, lambda p: p.x <= rect.xmax, lambda a, b: x_cross(a, b, rect.xmax))
    ring = clip_edge(ring, lambda p: p.y >= rect.ymin, lambda a, b: y_cross(a, b, rect.ymin))
    ring = clip_edge(ring, lambda p: p.y <= rect.ymax, lambda a, b: y_cross(a, b, rect.ymax))
    return ring


def clip_segment_to_rect(
    a: Point, b: Point, rect: Rect
) -> Optional[Tuple[Point, Point]]:
    """Liang-Barsky clip of segment ``ab`` to a rectangle, or None if outside.

    The returned segment may be degenerate (a point) when ``ab`` only touches
    the rectangle boundary.
    """
    dx = b.x - a.x
    dy = b.y - a.y
    t0, t1 = 0.0, 1.0
    for p, q in (
        (-dx, a.x - rect.xmin),
        (dx, rect.xmax - a.x),
        (-dy, a.y - rect.ymin),
        (dy, rect.ymax - a.y),
    ):
        if p == 0.0:
            if q < 0.0:
                return None
            continue
        r = q / p
        if p < 0.0:
            if r > t1:
                return None
            if r > t0:
                t0 = r
        else:
            if r < t0:
                return None
            if r < t1:
                t1 = r
    return (
        Point(a.x + t0 * dx, a.y + t0 * dy),
        Point(a.x + t1 * dx, a.y + t1 * dy),
    )
