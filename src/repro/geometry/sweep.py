"""Red-blue segment intersection detection for polygon boundaries.

This is the "Software Segment Intersection Test" of the paper (section 3.1),
with the *restricted search space* optimization of section 4.1.1: only edges
that intersect both MBRs participate, which the paper measured at a 30-40%
improvement without changing the asymptotic complexity.

The sweep is an x-ordered sweep-and-prune: edges of both polygons are merged
in order of their lower x coordinate; an active set per color holds edges
whose x range spans the sweep line; each arriving edge is tested exactly
against the active edges of the *other* color whose y ranges overlap.  Unlike
a neighbor-only Shamos-Hoey status walk, this formulation is insensitive to
the degeneracies real GIS polygons exhibit (shared endpoints, collinear
edges, self-intersections of non-simple rings) because every candidate pair
gets the exact closed-segment test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .point import Point
from .polygon import Polygon
from .predicates import segments_intersect
from .rect import Rect

# Flattened edge record: (xmin, xmax, ymin, ymax, ax, ay, bx, by)
_Edge = Tuple[float, float, float, float, float, float, float, float]


@dataclass
class SweepStats:
    """Work counters for one or many red-blue sweeps (ablation support)."""

    edges_considered: int = 0
    edges_after_restriction: int = 0
    #: Edges whose events the sweep actually consumed before terminating.
    #: For negative pairs this equals ``edges_after_restriction`` (the sweep
    #: must exhaust every event to prove disjointness); for positive pairs
    #: it stops at the first crossing - the cost asymmetry that makes
    #: negative candidates the expensive case in software.
    edges_processed: int = 0
    candidate_tests: int = 0
    intersections_found: int = 0

    def merge(self, other: "SweepStats") -> None:
        self.edges_considered += other.edges_considered
        self.edges_after_restriction += other.edges_after_restriction
        self.edges_processed += other.edges_processed
        self.candidate_tests += other.candidate_tests
        self.intersections_found += other.intersections_found


def _flatten_edges(
    polygon: Polygon, window: Optional[Rect]
) -> List[_Edge]:
    """Edge records of ``polygon``, optionally restricted to ``window``.

    The restriction keeps any edge whose own MBR intersects the window; every
    boundary crossing lies in the window (the intersection of the two object
    MBRs), so restriction never loses a crossing.
    """
    out: List[_Edge] = []
    if window is not None:
        wxmin, wymin, wxmax, wymax = window.as_tuple()
    verts = polygon.vertices
    ax, ay = verts[-1].x, verts[-1].y
    for v in verts:
        bx, by = v.x, v.y
        xmin, xmax = (ax, bx) if ax <= bx else (bx, ax)
        ymin, ymax = (ay, by) if ay <= by else (by, ay)
        if window is None or (
            xmin <= wxmax and wxmin <= xmax and ymin <= wymax and wymin <= ymax
        ):
            out.append((xmin, xmax, ymin, ymax, ax, ay, bx, by))
        ax, ay = bx, by
    return out


def _edges_cross(e: _Edge, f: _Edge) -> bool:
    return segments_intersect(
        Point(e[4], e[5]),
        Point(e[6], e[7]),
        Point(f[4], f[5]),
        Point(f[6], f[7]),
    )


def red_blue_intersection(
    red: Sequence[_Edge],
    blue: Sequence[_Edge],
    stats: Optional[SweepStats] = None,
) -> bool:
    """True when any red edge intersects any blue edge (closed segments).

    Both inputs must be edge records from :func:`_flatten_edges`; they are
    sorted here, so callers may pass them in any order.
    """
    if not red or not blue:
        return False
    red_sorted = sorted(red)
    blue_sorted = sorted(blue)

    # Active sets: lists pruned lazily as the sweep advances.  Each arriving
    # edge is checked against the other color's active list.
    active: List[List[_Edge]] = [[], []]
    events: List[Tuple[_Edge, int]] = [(e, 0) for e in red_sorted]
    events += [(e, 1) for e in blue_sorted]
    events.sort(key=lambda item: item[0][0])

    tests = 0
    processed = 0
    try:
        for edge, color in events:
            processed += 1
            x = edge[0]
            others = active[1 - color]
            if others:
                # Prune expired edges in place while scanning for candidates.
                kept: List[_Edge] = []
                ymin, ymax = edge[2], edge[3]
                for other in others:
                    if other[1] < x:
                        continue
                    kept.append(other)
                    if other[2] <= ymax and ymin <= other[3]:
                        tests += 1
                        if _edges_cross(edge, other):
                            if stats is not None:
                                stats.intersections_found += 1
                            return True
                active[1 - color] = kept
            active[color].append(edge)
        return False
    finally:
        if stats is not None:
            stats.candidate_tests += tests
            stats.edges_processed += processed


def boundaries_intersect(
    a: Polygon,
    b: Polygon,
    restrict_search_space: bool = True,
    stats: Optional[SweepStats] = None,
) -> bool:
    """True when the boundaries of ``a`` and ``b`` share at least one point.

    With ``restrict_search_space`` (the default, as in the paper), only edges
    intersecting the common MBR window are swept.  Containment (one polygon
    strictly inside the other) is invisible to this test by design; the
    point-in-polygon step of the full intersection test covers it.
    """
    if stats is not None:
        stats.edges_considered += a.num_vertices + b.num_vertices
    window: Optional[Rect] = None
    if restrict_search_space:
        window = a.mbr.intersection(b.mbr)
        if window is None:
            return False
    red = _flatten_edges(a, window)
    blue = _flatten_edges(b, window)
    if stats is not None:
        stats.edges_after_restriction += len(red) + len(blue)
    return red_blue_intersection(red, blue, stats)


def polygons_intersect(
    a: Polygon,
    b: Polygon,
    restrict_search_space: bool = True,
    stats: Optional[SweepStats] = None,
) -> bool:
    """Full software intersection test: point-in-polygon plus boundary sweep.

    This is the reference software algorithm of the paper's section 3.1:
    first the linear point-in-polygon step (which also resolves containment),
    then the plane sweep over (restricted) boundary edges.
    """
    if not a.mbr.intersects(b.mbr):
        return False
    from .point_in_polygon import PointLocation, locate_point

    if locate_point(a.vertices[0], b.vertices) is not PointLocation.OUTSIDE:
        return True
    if locate_point(b.vertices[0], a.vertices) is not PointLocation.OUTSIDE:
        return True
    return boundaries_intersect(a, b, restrict_search_space, stats)


def boundaries_intersect_brute_force(a: Polygon, b: Polygon) -> bool:
    """Quadratic reference test used by the property-based test suite."""
    edges_b = list(b.edges())
    for pa, pb in a.edges():
        for qa, qb in edges_b:
            if segments_intersect(pa, pb, qa, qb):
                return True
    return False
