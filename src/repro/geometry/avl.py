"""Self-balancing binary search tree with a pluggable comparator.

The plane-sweep algorithms (paper section 3.1: "has to maintain a random
access structure (usually a balanced search tree such as AVL and Red-Black
tree)") use this AVL tree as the sweep-status structure.  The comparator is
supplied by the caller and may consult external state (the current sweep
position); the tree only requires that the relative order of stored items
stays consistent between the operations that touch them, which the
Shamos-Hoey detection sweep guarantees by stopping at the first intersection.
"""

from __future__ import annotations

from typing import Callable, Generic, Iterator, List, Optional, TypeVar

T = TypeVar("T")


class AVLNode(Generic[T]):
    """Internal tree node; exposed so callers can walk neighbors in O(1) amortized."""

    __slots__ = ("item", "left", "right", "parent", "height")

    def __init__(self, item: T) -> None:
        self.item = item
        self.left: Optional["AVLNode[T]"] = None
        self.right: Optional["AVLNode[T]"] = None
        self.parent: Optional["AVLNode[T]"] = None
        self.height = 1


class AVLTree(Generic[T]):
    """AVL tree ordered by ``compare(a, b) -> negative | 0 | positive``.

    Duplicate-comparing items are allowed; they are stored deterministically
    (ties go right) and removed by identity, so the sweep can hold segments
    that momentarily compare equal (shared endpoints).
    """

    def __init__(self, compare: Callable[[T, T], float]) -> None:
        self._compare = compare
        self._root: Optional[AVLNode[T]] = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    # -- queries ------------------------------------------------------------

    def items_in_order(self) -> List[T]:
        """All items, smallest to largest (for tests and diagnostics)."""
        return [n.item for n in self._iter_nodes()]

    def _iter_nodes(self) -> Iterator[AVLNode[T]]:
        stack: List[AVLNode[T]] = []
        node = self._root
        while stack or node:
            while node:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node
            node = node.right

    @staticmethod
    def predecessor(node: AVLNode[T]) -> Optional[AVLNode[T]]:
        """The in-order neighbor immediately below ``node``."""
        if node.left:
            cur = node.left
            while cur.right:
                cur = cur.right
            return cur
        cur = node
        while cur.parent and cur.parent.left is cur:
            cur = cur.parent
        return cur.parent

    @staticmethod
    def successor(node: AVLNode[T]) -> Optional[AVLNode[T]]:
        """The in-order neighbor immediately above ``node``."""
        if node.right:
            cur = node.right
            while cur.left:
                cur = cur.left
            return cur
        cur = node
        while cur.parent and cur.parent.right is cur:
            cur = cur.parent
        return cur.parent

    # -- modification ----------------------------------------------------------

    def insert(self, item: T) -> AVLNode[T]:
        """Insert ``item`` and return its node handle."""
        new = AVLNode(item)
        if self._root is None:
            self._root = new
            self._size = 1
            return new
        cur = self._root
        while True:
            if self._compare(item, cur.item) < 0:
                if cur.left is None:
                    cur.left = new
                    break
                cur = cur.left
            else:
                if cur.right is None:
                    cur.right = new
                    break
                cur = cur.right
        new.parent = cur
        self._size += 1
        self._rebalance_up(cur)
        return new

    def remove_node(self, node: AVLNode[T]) -> None:
        """Remove a node previously returned by :meth:`insert`.

        Removal is by node identity (not by comparator search), so it stays
        correct even if the comparator's view of the item has drifted since
        insertion — exactly the situation during a sweep, where the ordering
        key is the y coordinate at an advancing x.  Other node handles remain
        valid: deletion splices nodes structurally and never moves payloads
        between nodes.
        """
        if node.left and node.right:
            # Splice the in-order successor (no left child) into node's
            # position.  Payloads never move, so handles stay valid.
            succ = node.right
            while succ.left:
                succ = succ.left
            if succ.parent is node:
                rebalance_from = succ
            else:
                parent = succ.parent
                assert parent is not None
                parent.left = succ.right
                if succ.right:
                    succ.right.parent = parent
                succ.right = node.right
                node.right.parent = succ
                rebalance_from = parent
            succ.left = node.left
            node.left.parent = succ
            self._replace_in_parent(node, succ)
            succ.height = node.height
            node.parent = node.left = node.right = None
            self._size -= 1
            self._rebalance_up(rebalance_from)
            return
        child = node.left if node.left else node.right
        parent = node.parent
        if child:
            child.parent = parent
        if parent is None:
            self._root = child
        elif parent.left is node:
            parent.left = child
        else:
            parent.right = child
        node.parent = node.left = node.right = None
        self._size -= 1
        if parent:
            self._rebalance_up(parent)

    # -- AVL mechanics ------------------------------------------------------------

    @staticmethod
    def _height(node: Optional[AVLNode[T]]) -> int:
        return node.height if node else 0

    def _update(self, node: AVLNode[T]) -> None:
        node.height = 1 + max(self._height(node.left), self._height(node.right))

    def _balance_factor(self, node: AVLNode[T]) -> int:
        return self._height(node.left) - self._height(node.right)

    def _rotate_right(self, node: AVLNode[T]) -> AVLNode[T]:
        pivot = node.left
        assert pivot is not None
        node.left = pivot.right
        if pivot.right:
            pivot.right.parent = node
        self._replace_in_parent(node, pivot)
        pivot.right = node
        node.parent = pivot
        self._update(node)
        self._update(pivot)
        return pivot

    def _rotate_left(self, node: AVLNode[T]) -> AVLNode[T]:
        pivot = node.right
        assert pivot is not None
        node.right = pivot.left
        if pivot.left:
            pivot.left.parent = node
        self._replace_in_parent(node, pivot)
        pivot.left = node
        node.parent = pivot
        self._update(node)
        self._update(pivot)
        return pivot

    def _replace_in_parent(self, node: AVLNode[T], new: AVLNode[T]) -> None:
        parent = node.parent
        new.parent = parent
        if parent is None:
            self._root = new
        elif parent.left is node:
            parent.left = new
        else:
            parent.right = new

    def _rebalance_up(self, node: Optional[AVLNode[T]]) -> None:
        while node:
            self._update(node)
            balance = self._balance_factor(node)
            if balance > 1:
                assert node.left is not None
                if self._balance_factor(node.left) < 0:
                    self._rotate_left(node.left)
                node = self._rotate_right(node)
            elif balance < -1:
                assert node.right is not None
                if self._balance_factor(node.right) > 0:
                    self._rotate_right(node.right)
                node = self._rotate_left(node)
            node = node.parent

    # -- validation (used by the test suite) -------------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError if AVL height/parent invariants are violated."""

        def walk(node: Optional[AVLNode[T]]) -> int:
            if node is None:
                return 0
            lh = walk(node.left)
            rh = walk(node.right)
            assert node.height == 1 + max(lh, rh), "stale height"
            assert abs(lh - rh) <= 1, "AVL balance violated"
            if node.left:
                assert node.left.parent is node, "broken parent link"
            if node.right:
                assert node.right.parent is node, "broken parent link"
            return node.height

        walk(self._root)
        assert self._size == sum(1 for _ in self._iter_nodes()), "size drift"
