"""2D point primitive.

The whole library works in a plain Cartesian data space (the paper's GIS
datasets use longitude/latitude treated as planar coordinates).  ``Point`` is
deliberately tiny: two float slots, value semantics, and the handful of vector
operations the geometry kernels need.
"""

from __future__ import annotations

import math
from typing import Iterator, Tuple


class Point:
    """An immutable 2D point / vector.

    >>> Point(1.0, 2.0) + Point(0.5, 0.5)
    Point(1.5, 2.5)
    """

    __slots__ = ("x", "y")

    def __init__(self, x: float, y: float) -> None:
        object.__setattr__(self, "x", float(x))
        object.__setattr__(self, "y", float(y))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Point is immutable")

    def __reduce__(self):
        # Slotted immutables need explicit pickle support (the default
        # protocol restores state through the blocked __setattr__); worker
        # processes of repro.exec receive geometry this way.
        return (Point, (self.x, self.y))

    # -- value semantics -------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Point):
            return NotImplemented
        return self.x == other.x and self.y == other.y

    def __hash__(self) -> int:
        return hash((self.x, self.y))

    def __repr__(self) -> str:
        return f"Point({self.x:g}, {self.y:g})"

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)`` as a plain tuple."""
        return (self.x, self.y)

    # -- vector arithmetic ------------------------------------------------

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Point":
        return Point(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __neg__(self) -> "Point":
        return Point(-self.x, -self.y)

    def dot(self, other: "Point") -> float:
        """Dot product with ``other``."""
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Point") -> float:
        """Z component of the 3D cross product (signed parallelogram area)."""
        return self.x * other.y - self.y * other.x

    def norm(self) -> float:
        """Euclidean length of the vector."""
        return math.hypot(self.x, self.y)

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def squared_distance_to(self, other: "Point") -> float:
        """Squared Euclidean distance (avoids the sqrt in hot loops)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def midpoint(self, other: "Point") -> "Point":
        """Point halfway between this point and ``other``."""
        return Point((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
