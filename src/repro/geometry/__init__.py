"""Computational-geometry substrate.

Everything the refinement step needs, implemented from scratch: primitive
types (:class:`Point`, :class:`Rect`, :class:`Segment`, :class:`Polygon`),
exact predicates, the ray-crossing point-in-polygon test, red-blue boundary
sweeps, the Shamos-Hoey simplicity sweep, and both reference and optimized
polygon-distance algorithms.
"""

from .avl import AVLTree
from .clip import clip_polygon_to_rect, clip_segment_to_rect
from .convex_hull import convex_hull, hull_polygon
from .distance import (
    boundary_distance_brute_force,
    either_contains,
    point_to_boundary_distance,
    point_to_polygon_distance,
    polygon_distance_brute_force,
    polygons_within_distance_brute_force,
)
from .min_dist import (
    MinDistStats,
    min_boundary_distance,
    polygon_min_distance,
    polygons_within_distance,
)
from .point import Point
from .point_in_polygon import (
    PointLocation,
    locate_point,
    point_in_polygon,
    point_strictly_in_polygon,
)
from .polygon import Polygon, rect_to_polygon
from .predicates import (
    Orientation,
    collinear_overlap,
    cross,
    on_segment,
    orientation,
    segment_intersection_point,
    segments_intersect,
    segments_intersect_properly,
)
from .rect import Rect
from .segment import (
    Segment,
    point_segment_distance,
    segment_rect_distance,
    segment_segment_distance,
    segment_segment_max_distance,
)
from .shamos_hoey import any_segments_intersect, polygon_is_simple
from .simplify import simplify_chain, simplify_polygon
from .sweep import (
    SweepStats,
    boundaries_intersect,
    boundaries_intersect_brute_force,
    polygons_intersect,
)

__all__ = [
    "AVLTree",
    "MinDistStats",
    "Orientation",
    "Point",
    "PointLocation",
    "Polygon",
    "Rect",
    "Segment",
    "SweepStats",
    "any_segments_intersect",
    "boundaries_intersect",
    "boundaries_intersect_brute_force",
    "boundary_distance_brute_force",
    "clip_polygon_to_rect",
    "clip_segment_to_rect",
    "collinear_overlap",
    "convex_hull",
    "cross",
    "either_contains",
    "hull_polygon",
    "locate_point",
    "min_boundary_distance",
    "on_segment",
    "orientation",
    "point_in_polygon",
    "point_segment_distance",
    "point_to_boundary_distance",
    "point_to_polygon_distance",
    "point_strictly_in_polygon",
    "polygon_distance_brute_force",
    "polygon_is_simple",
    "polygon_min_distance",
    "polygons_intersect",
    "polygons_within_distance",
    "polygons_within_distance_brute_force",
    "rect_to_polygon",
    "segment_intersection_point",
    "segment_rect_distance",
    "segment_segment_distance",
    "segment_segment_max_distance",
    "segments_intersect",
    "segments_intersect_properly",
    "simplify_chain",
    "simplify_polygon",
]
