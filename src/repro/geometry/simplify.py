"""Polyline / polygon simplification (Douglas-Peucker).

A standard GIS utility for the complexity studies this library supports:
the paper's whole premise is that refinement cost scales with vertex
counts, and simplification is how practitioners trade geometric fidelity
for speed.  The examples and ablations use it to generate reduced-detail
variants of the synthetic layers.

The implementation is the classic recursive Douglas-Peucker: keep the two
chain endpoints, find the interior vertex farthest from the chord, and
recurse on both halves while that distance exceeds the tolerance.
"""

from __future__ import annotations

from typing import List, Sequence

from .point import Point
from .polygon import Polygon
from .segment import point_segment_distance


def simplify_chain(
    points: Sequence[Point], tolerance: float
) -> List[Point]:
    """Douglas-Peucker simplification of an open polyline.

    The first and last points are always kept; every dropped point lies
    within ``tolerance`` of the simplified chain's corresponding chord.
    """
    if tolerance < 0.0:
        raise ValueError("tolerance must be non-negative")
    n = len(points)
    if n <= 2:
        return list(points)

    keep = [False] * n
    keep[0] = keep[n - 1] = True
    stack = [(0, n - 1)]
    while stack:
        lo, hi = stack.pop()
        if hi - lo < 2:
            continue
        a, b = points[lo], points[hi]
        worst = -1.0
        worst_idx = -1
        for i in range(lo + 1, hi):
            d = point_segment_distance(points[i], a, b)
            if d > worst:
                worst = d
                worst_idx = i
        if worst > tolerance:
            keep[worst_idx] = True
            stack.append((lo, worst_idx))
            stack.append((worst_idx, hi))
    return [p for p, k in zip(points, keep) if k]


def simplify_polygon(polygon: Polygon, tolerance: float) -> Polygon:
    """Simplify a polygon ring with Douglas-Peucker.

    The ring is split at its two mutually-farthest-in-index anchor vertices
    (first vertex and the vertex farthest from it), each half simplified as
    an open chain, and the halves rejoined - the conventional way to apply
    an open-chain algorithm to a closed ring without collapsing it.  The
    result always has at least 3 vertices.
    """
    if tolerance < 0.0:
        raise ValueError("tolerance must be non-negative")
    verts = list(polygon.vertices)
    n = len(verts)
    if n <= 3 or tolerance == 0.0:
        return polygon

    anchor = 0
    far = max(range(1, n), key=lambda i: verts[0].squared_distance_to(verts[i]))
    first_half = verts[anchor : far + 1]
    second_half = verts[far:] + [verts[0]]
    simplified = (
        simplify_chain(first_half, tolerance)[:-1]
        + simplify_chain(second_half, tolerance)[:-1]
    )
    if len(simplified) < 3:
        # Tolerance swallowed the ring: keep the anchor triangle-ish shape.
        mid = (anchor + far) // 2 if far - anchor >= 2 else (far + 1) % n
        fallback = sorted({anchor, mid, far})
        simplified = [verts[i] for i in fallback]
        if len(simplified) < 3:
            return polygon
    return Polygon(simplified)
