"""Brute-force polygon distance reference implementations.

These quadratic algorithms define the ground truth the optimized
frontier-chain ``minDist`` (:mod:`repro.geometry.min_dist`) and the hardware
distance test must agree with.  The paper quotes their ``O(n x m)`` worst
case as the motivation for hardware acceleration of distance predicates.
"""

from __future__ import annotations

import math

from .point import Point
from .point_in_polygon import PointLocation, locate_point
from .polygon import Polygon
from .segment import point_segment_distance, segment_segment_distance


def point_to_boundary_distance(p: Point, polygon: Polygon) -> float:
    """Minimum distance from ``p`` to the polygon's boundary."""
    best = math.inf
    for a, b in polygon.edges():
        d = point_segment_distance(p, a, b)
        if d < best:
            best = d
            if best == 0.0:
                break
    return best


def point_to_polygon_distance(p: Point, polygon: Polygon) -> float:
    """Minimum distance from ``p`` to the polygon as a closed region.

    Zero when ``p`` lies inside or on the boundary; otherwise the distance
    to the boundary.  This is the refinement predicate of nearest-neighbor
    queries.
    """
    if polygon.mbr.contains_point(p) and polygon.contains_point(p):
        return 0.0
    return point_to_boundary_distance(p, polygon)


def boundary_distance_brute_force(a: Polygon, b: Polygon) -> float:
    """Minimum distance between the two boundaries, by exhaustive edge pairs."""
    best = math.inf
    edges_b = list(b.edges())
    for pa, pb in a.edges():
        for qa, qb in edges_b:
            d = segment_segment_distance(pa, pb, qa, qb)
            if d < best:
                best = d
                if best == 0.0:
                    return 0.0
    return best


def either_contains(a: Polygon, b: Polygon) -> bool:
    """True when one polygon's interior contains a vertex of the other.

    Combined with a boundary-distance of zero check this resolves the
    region-distance-zero cases: overlapping interiors always put some vertex
    of one polygon inside the other *or* make the boundaries cross.
    """
    va = a.vertices[0]
    if b.mbr.contains_point(va):
        if locate_point(va, b.vertices) is not PointLocation.OUTSIDE:
            return True
    vb = b.vertices[0]
    if not a.mbr.contains_point(vb):
        return False
    return locate_point(vb, a.vertices) is not PointLocation.OUTSIDE


def polygon_distance_brute_force(a: Polygon, b: Polygon) -> float:
    """Minimum distance between the polygons viewed as closed regions.

    Zero when the regions intersect (including containment); otherwise the
    minimum boundary-to-boundary distance.
    """
    if a.mbr.intersects(b.mbr) and either_contains(a, b):
        return 0.0
    return boundary_distance_brute_force(a, b)


def polygons_within_distance_brute_force(a: Polygon, b: Polygon, d: float) -> bool:
    """Reference within-distance predicate: ``distance(a, b) <= d``."""
    if d < 0.0:
        raise ValueError("distance must be non-negative")
    if a.mbr.min_distance(b.mbr) > d:
        return False
    return polygon_distance_brute_force(a, b) <= d
