"""Convex hulls (Andrew's monotone chain).

Convex hulls are one of the progressive approximations surveyed in the
paper's related work (the geometric filter of Brinkhoff et al. [5]); the
dataset generators also use hulls to derive well-behaved query regions.
"""

from __future__ import annotations

from typing import List, Sequence

from .point import Point
from .predicates import cross


def convex_hull(points: Sequence[Point]) -> List[Point]:
    """Convex hull in counter-clockwise order, collinear points dropped.

    Returns the input (deduplicated) when fewer than three distinct points
    exist; degenerate (all-collinear) inputs yield the two extreme points.
    """
    unique = sorted(set(points), key=lambda p: (p.x, p.y))
    if len(unique) <= 2:
        return unique

    def build(seq: Sequence[Point]) -> List[Point]:
        chain: List[Point] = []
        for p in seq:
            while len(chain) >= 2 and cross(chain[-2], chain[-1], p) <= 0.0:
                chain.pop()
            chain.append(p)
        return chain

    lower = build(unique)
    upper = build(list(reversed(unique)))
    hull = lower[:-1] + upper[:-1]
    return hull if len(hull) >= 2 else unique[:2]


def hull_polygon(points: Sequence[Point]):
    """Convex hull as a :class:`~repro.geometry.polygon.Polygon`.

    Raises ValueError for degenerate inputs with fewer than 3 hull vertices.
    """
    from .polygon import Polygon

    hull = convex_hull(points)
    if len(hull) < 3:
        raise ValueError("input points are collinear; hull is degenerate")
    return Polygon(hull)
