"""Axis-aligned rectangles (minimum bounding rectangles).

MBRs drive the filtering step of every spatial query in the paper, the
R-tree, the 0-Object distance filter, and the projection of data space onto
the rendering window (paper section 3.2).
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, List, Sequence, Tuple

from .point import Point


class Rect:
    """A closed axis-aligned rectangle ``[xmin, xmax] x [ymin, ymax]``.

    Degenerate rectangles (zero width and/or height) are allowed; they arise
    naturally as MBRs of horizontal/vertical segments and of single points.
    """

    __slots__ = ("xmin", "ymin", "xmax", "ymax")

    def __init__(self, xmin: float, ymin: float, xmax: float, ymax: float) -> None:
        if xmin > xmax or ymin > ymax:
            raise ValueError(
                f"invalid Rect: ({xmin}, {ymin}, {xmax}, {ymax}) has negative extent"
            )
        object.__setattr__(self, "xmin", float(xmin))
        object.__setattr__(self, "ymin", float(ymin))
        object.__setattr__(self, "xmax", float(xmax))
        object.__setattr__(self, "ymax", float(ymax))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Rect is immutable")

    def __reduce__(self):
        # Explicit pickle support for the slotted immutable (see Point).
        return (Rect, (self.xmin, self.ymin, self.xmax, self.ymax))

    # -- construction -----------------------------------------------------

    @staticmethod
    def from_points(points: Iterable[Point]) -> "Rect":
        """Bounding rectangle of a non-empty point collection."""
        it = iter(points)
        try:
            first = next(it)
        except StopIteration:
            raise ValueError("Rect.from_points requires at least one point") from None
        xmin = xmax = first.x
        ymin = ymax = first.y
        for p in it:
            if p.x < xmin:
                xmin = p.x
            elif p.x > xmax:
                xmax = p.x
            if p.y < ymin:
                ymin = p.y
            elif p.y > ymax:
                ymax = p.y
        return Rect(xmin, ymin, xmax, ymax)

    @staticmethod
    def union_all(rects: Sequence["Rect"]) -> "Rect":
        """Bounding rectangle of a non-empty collection of rectangles."""
        if not rects:
            raise ValueError("Rect.union_all requires at least one rectangle")
        xmin = min(r.xmin for r in rects)
        ymin = min(r.ymin for r in rects)
        xmax = max(r.xmax for r in rects)
        ymax = max(r.ymax for r in rects)
        return Rect(xmin, ymin, xmax, ymax)

    # -- value semantics ---------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rect):
            return NotImplemented
        return (
            self.xmin == other.xmin
            and self.ymin == other.ymin
            and self.xmax == other.xmax
            and self.ymax == other.ymax
        )

    def __hash__(self) -> int:
        return hash((self.xmin, self.ymin, self.xmax, self.ymax))

    def __repr__(self) -> str:
        return f"Rect({self.xmin:g}, {self.ymin:g}, {self.xmax:g}, {self.ymax:g})"

    def __iter__(self) -> Iterator[float]:
        yield self.xmin
        yield self.ymin
        yield self.xmax
        yield self.ymax

    # -- basic measures ----------------------------------------------------

    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def perimeter(self) -> float:
        return 2.0 * (self.width + self.height)

    @property
    def center(self) -> Point:
        return Point((self.xmin + self.xmax) * 0.5, (self.ymin + self.ymax) * 0.5)

    def corners(self) -> List[Point]:
        """The four corners in counter-clockwise order starting at (xmin, ymin)."""
        return [
            Point(self.xmin, self.ymin),
            Point(self.xmax, self.ymin),
            Point(self.xmax, self.ymax),
            Point(self.xmin, self.ymax),
        ]

    # -- topology ------------------------------------------------------------

    def contains_point(self, p: Point) -> bool:
        """True if ``p`` lies in the closed rectangle."""
        return self.xmin <= p.x <= self.xmax and self.ymin <= p.y <= self.ymax

    def contains_rect(self, other: "Rect") -> bool:
        """True if ``other`` lies entirely within this (closed) rectangle."""
        return (
            self.xmin <= other.xmin
            and self.ymin <= other.ymin
            and other.xmax <= self.xmax
            and other.ymax <= self.ymax
        )

    def intersects(self, other: "Rect") -> bool:
        """True if the closed rectangles share at least one point."""
        return (
            self.xmin <= other.xmax
            and other.xmin <= self.xmax
            and self.ymin <= other.ymax
            and other.ymin <= self.ymax
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """The common rectangle, or None when the rectangles are disjoint."""
        xmin = max(self.xmin, other.xmin)
        ymin = max(self.ymin, other.ymin)
        xmax = min(self.xmax, other.xmax)
        ymax = min(self.ymax, other.ymax)
        if xmin > xmax or ymin > ymax:
            return None
        return Rect(xmin, ymin, xmax, ymax)

    def union(self, other: "Rect") -> "Rect":
        """Smallest rectangle covering both rectangles."""
        return Rect(
            min(self.xmin, other.xmin),
            min(self.ymin, other.ymin),
            max(self.xmax, other.xmax),
            max(self.ymax, other.ymax),
        )

    def expand(self, margin: float) -> "Rect":
        """Grow (or shrink, for negative margins) the rectangle on every side.

        This is the "extend the MBRs by D in each direction" operation used by
        the paper's within-distance optimizations (section 4.1.1) and by the
        distance-test projection (Figure 7b).
        """
        r = Rect.__new__(Rect)
        object.__setattr__(r, "xmin", self.xmin - margin)
        object.__setattr__(r, "ymin", self.ymin - margin)
        object.__setattr__(r, "xmax", self.xmax + margin)
        object.__setattr__(r, "ymax", self.ymax + margin)
        if r.xmin > r.xmax or r.ymin > r.ymax:
            raise ValueError(f"expand({margin}) collapses {self!r}")
        return r

    # -- metric -------------------------------------------------------------

    def distance_to_point(self, p: Point) -> float:
        """Minimum distance from ``p`` to the (closed) rectangle."""
        dx = max(self.xmin - p.x, 0.0, p.x - self.xmax)
        dy = max(self.ymin - p.y, 0.0, p.y - self.ymax)
        return math.hypot(dx, dy)

    def min_distance(self, other: "Rect") -> float:
        """Minimum distance between the two rectangles (0 when they overlap).

        This is a lower bound on the distance between any two objects bounded
        by the rectangles, which is exactly what MBR filtering for the
        within-distance join relies on (paper section 4.1.1).
        """
        dx = max(self.xmin - other.xmax, 0.0, other.xmin - self.xmax)
        dy = max(self.ymin - other.ymax, 0.0, other.ymin - self.ymax)
        return math.hypot(dx, dy)

    def max_distance(self, other: "Rect") -> float:
        """Maximum distance between any point of this rect and any of ``other``.

        An (untight) upper bound on the distance between objects bounded by
        the rectangles; the 0-Object filter refines it.
        """
        dx = max(self.xmax - other.xmin, other.xmax - self.xmin)
        dy = max(self.ymax - other.ymin, other.ymax - self.ymin)
        return math.hypot(dx, dy)

    def within_distance(self, other: "Rect", d: float) -> bool:
        """True when ``min_distance(other) <= d`` (cheap, no sqrt)."""
        dx = max(self.xmin - other.xmax, 0.0, other.xmin - self.xmax)
        dy = max(self.ymin - other.ymax, 0.0, other.ymin - self.ymax)
        return dx * dx + dy * dy <= d * d

    def as_tuple(self) -> Tuple[float, float, float, float]:
        return (self.xmin, self.ymin, self.xmax, self.ymax)
