"""Shamos-Hoey plane sweep: does any pair of segments intersect?

This is the classic detection-only variant of the Bentley-Ottmann sweep the
paper cites for the software segment intersection test [3]: events are the
segment endpoints sorted by x, the sweep status is a balanced tree (here the
AVL tree from :mod:`repro.geometry.avl`) ordered by the y coordinate at the
sweep line, and only status neighbors are tested against each other.  Because
the algorithm stops at the first intersection found, the status order remains
valid throughout the run (segments only swap order at crossings).

Two entry points:

* :func:`any_segments_intersect` - detection over one set of segments, with a
  caller-supplied predicate for pairs whose contact should be ignored
  (adjacent polygon edges sharing an endpoint).
* :func:`polygon_is_simple` - the simplicity check from the paper's footnote 1.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from .avl import AVLNode, AVLTree
from .point import Point
from .predicates import on_segment, segments_intersect
from .polygon import Polygon

# A sweep segment: (id, left endpoint, right endpoint) with left.x <= right.x,
# plus the original endpoints for exact tests.
_SweepSeg = Tuple[int, Point, Point]

IgnorePair = Callable[[int, int], bool]


class _SweepContext:
    """Shared mutable sweep position consulted by the status comparator."""

    __slots__ = ("x",)

    def __init__(self) -> None:
        self.x = 0.0


def _y_at(seg: _SweepSeg, x: float) -> float:
    """Height of the segment at sweep position ``x``.

    Vertical segments report their lower endpoint; the vertical-segment
    neighborhood walk in the sweep compensates for the ambiguity.
    """
    _, left, right = seg
    if right.x == left.x:
        return min(left.y, right.y)
    if x <= left.x:
        return left.y
    if x >= right.x:
        return right.y
    t = (x - left.x) / (right.x - left.x)
    return left.y + t * (right.y - left.y)


def _slope_key(seg: _SweepSeg) -> float:
    """Finite ordering key for the slope; verticals sort above everything."""
    _, left, right = seg
    dx = right.x - left.x
    if dx == 0.0:
        return float("inf")
    return (right.y - left.y) / dx


def _pairs_conflict(
    a: _SweepSeg, b: _SweepSeg, ignore: Optional[IgnorePair]
) -> bool:
    """Exact intersection test honoring the ignore predicate."""
    if a[0] == b[0]:
        return False
    if ignore is not None and ignore(a[0], b[0]):
        return False
    return segments_intersect(a[1], a[2], b[1], b[2])


def any_segments_intersect(
    segments: Sequence[Tuple[Point, Point]],
    ignore: Optional[IgnorePair] = None,
) -> Optional[Tuple[int, int]]:
    """Return the ids of one intersecting pair, or None when none intersect.

    ``ignore(i, j)`` may exempt specific pairs (it is consulted with the
    original indices into ``segments``, in both orders).  Zero-length
    segments are treated as points and participate normally.
    """
    n = len(segments)
    if n < 2:
        return None

    sweep_segs: List[_SweepSeg] = []
    for i, (p, q) in enumerate(segments):
        if (p.x, p.y) <= (q.x, q.y):
            sweep_segs.append((i, p, q))
        else:
            sweep_segs.append((i, q, p))

    ctx = _SweepContext()

    def compare(a: _SweepSeg, b: _SweepSeg) -> float:
        ya = _y_at(a, ctx.x)
        yb = _y_at(b, ctx.x)
        if ya != yb:
            return ya - yb
        sa = _slope_key(a)
        sb = _slope_key(b)
        if sa != sb:
            if sa == float("inf"):
                return 1.0
            if sb == float("inf"):
                return -1.0
            return sa - sb
        return a[0] - b[0]

    # Events: (x, kind, y, seg index). Left events (kind 0) are processed
    # before right events (kind 1) at equal x so that segments meeting
    # end-to-start coexist in the status and get neighbor-tested.
    events: List[Tuple[float, int, float, int]] = []
    for idx, seg in enumerate(sweep_segs):
        events.append((seg[1].x, 0, seg[1].y, idx))
        events.append((seg[2].x, 1, seg[2].y, idx))
    events.sort()

    tree: AVLTree[_SweepSeg] = AVLTree(compare)
    nodes: List[Optional[AVLNode[_SweepSeg]]] = [None] * n

    for x, kind, _y, idx in events:
        ctx.x = x
        seg = sweep_segs[idx]
        if kind == 0:
            node = tree.insert(seg)
            nodes[idx] = node
            pred = AVLTree.predecessor(node)
            succ = AVLTree.successor(node)
            if pred and _pairs_conflict(seg, pred.item, ignore):
                return (seg[0], pred.item[0])
            if succ and _pairs_conflict(seg, succ.item, ignore):
                return (seg[0], succ.item[0])
            hit = _scan_vertical_neighborhood(tree, node, seg, x, ignore)
            if hit is not None:
                return hit
        else:
            node = nodes[idx]
            if node is None:  # pragma: no cover - defensive
                continue
            pred = AVLTree.predecessor(node)
            succ = AVLTree.successor(node)
            tree.remove_node(node)
            nodes[idx] = None
            if pred and succ and _pairs_conflict(pred.item, succ.item, ignore):
                return (pred.item[0], succ.item[0])
    return None


def _scan_vertical_neighborhood(
    tree: AVLTree[_SweepSeg],
    node: AVLNode[_SweepSeg],
    seg: _SweepSeg,
    x: float,
    ignore: Optional[IgnorePair],
) -> Optional[Tuple[int, int]]:
    """Extra checks for vertical segments.

    A vertical segment is keyed at its lower endpoint, so segments it crosses
    higher up may not be immediate status neighbors.  Walk successors while
    they remain at or below the vertical segment's top and test each.  The
    walk is bounded by the number of segments genuinely overlapping the
    vertical span, so it does not change the sweep's complexity class.
    """
    _, left, right = seg
    if right.x != left.x:
        return None
    y_top = max(left.y, right.y)
    cur = AVLTree.successor(node)
    while cur is not None and _y_at(cur.item, x) <= y_top:
        if _pairs_conflict(seg, cur.item, ignore):
            return (seg[0], cur.item[0])
        cur = AVLTree.successor(cur)
    return None


def polygon_is_simple(polygon: Polygon) -> bool:
    """Simplicity check per the paper's footnote 1.

    A polygon is simple when its boundary neither self-intersects nor visits
    any vertex more than twice: adjacent edges may share exactly their common
    endpoint, and nothing else may touch.  Repeated consecutive vertices
    (zero-length edges) make a polygon non-simple.
    """
    verts = polygon.vertices
    n = len(verts)
    for i in range(n):
        if verts[i] == verts[(i + 1) % n]:
            return False

    edges: List[Tuple[Point, Point]] = list(polygon.edges())

    def adjacent_ok(i: int, j: int) -> bool:
        """Exempt adjacent edges - but only if they touch at just the shared
        vertex.  A fold-back (far endpoint on the neighbor) is detected here
        and reported as a conflict by *not* exempting the pair."""
        if (i + 1) % n == j:
            i, j = i, j
        elif (j + 1) % n == i:
            i, j = j, i
        else:
            return False
        # Edge i is (a, v), edge j is (v, b); conflict beyond v?
        a, v = edges[i]
        v2, b = edges[j]
        assert v == v2
        if on_segment(b, a, v) and b != v:
            return False
        if on_segment(a, v, b) and a != v:
            return False
        return True

    return any_segments_intersect(edges, ignore=adjacent_ok) is None
