"""Intersection selection: query polygon vs. dataset.

The paper's first query class (section 4.2): given a query polygon (a state
boundary from STATES50), find the dataset objects intersecting it.  The
pipeline follows Figure 8:

1. **MBR filtering** - an STR-packed R-tree window query with the query
   polygon's MBR;
2. **intermediate filtering** (optional) - the interior filter at a chosen
   tiling level identifies containment positives without geometry access,
   and/or the raster-interval filter (``use_intervals``) settles candidates
   in both directions with precomputed interval encodings - render-free;
3. **geometry comparison** - the refinement engine (software or hardware)
   decides the remaining candidates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.engine import RefinementEngine
from ..datasets.dataset import SpatialDataset
from ..exec.parallel import ParallelExecutor
from ..filters.interior import InteriorFilter
from ..filters.intervals import (
    DEFAULT_INTERVAL_LEVEL,
    IntervalIndex,
    IntervalVerdict,
    classify_intervals,
)
from ..geometry.polygon import Polygon
from ..index.str_pack import str_bulk_load
from ..obs.instrument import observe_pipeline
from .costs import CostBreakdown


@dataclass
class SelectionResult:
    """Result ids (dataset indexes) plus the per-stage cost breakdown."""

    ids: List[int]
    cost: CostBreakdown


class IntersectionSelection:
    """A reusable selection executor over one dataset.

    The R-tree is built once (index construction is not part of the paper's
    measured query cost) and shared by all queries.
    """

    def __init__(
        self,
        dataset: SpatialDataset,
        engine: RefinementEngine,
        interior_level: Optional[int] = None,
        executor: Optional[ParallelExecutor] = None,
        use_batch: bool = True,
        use_intervals: bool = False,
        interval_level: int = DEFAULT_INTERVAL_LEVEL,
    ) -> None:
        if interior_level is not None and interior_level < 0:
            raise ValueError("interior_level must be >= 0")
        self.dataset = dataset
        self.engine = engine
        self.interior_level = interior_level
        #: Render-free second filter (off by default, like ``use_batch`` a
        #: pure knob: results are bit-identical either way).  Dataset
        #: encodings precompute here, at build time; query polygons encode
        #: on first sight and memoize by content digest.
        self.intervals: Optional[IntervalIndex] = (
            IntervalIndex.for_datasets([dataset], level=interval_level)
            if use_intervals
            else None
        )
        #: Optional parallel batch executor for the geometry stage
        #: (identical results/stats to the serial loop).
        self.executor = executor
        #: Hand engines that support it (``engine.supports_batch``) whole
        #: candidate batches so the fixed per-test hardware overhead
        #: amortizes across pairs; results and stats are identical either
        #: way, so this is purely a throughput knob.
        self.use_batch = use_batch
        self.index = str_bulk_load(
            [(mbr, i) for i, mbr in enumerate(dataset.mbrs)]
        )

    def run(self, query: Polygon) -> SelectionResult:
        """Execute one selection and return results with costs."""
        cost = CostBreakdown()
        obs = observe_pipeline("selection", self.engine)

        with cost.time_stage("mbr_filter"):
            candidates = sorted(self.index.search(query.mbr))  # type: ignore[type-var]
        cost.candidates_after_mbr = len(candidates)

        positives: List[int] = []
        remaining: List[int] = candidates
        if self.interior_level is not None:
            with cost.time_stage("intermediate_filter"):
                interior = InteriorFilter(query, self.interior_level)
                remaining = []
                for i in candidates:
                    if interior.covers(self.dataset.mbrs[i]):
                        positives.append(i)
                    else:
                        remaining.append(i)
            cost.filter_positives = len(positives)

        if self.intervals is not None:
            # The interval second filter: settle candidates in both
            # directions with precomputed encodings, no rendering.  Runs
            # before the geometry stage dispatch, so the serial, batched,
            # and sharded paths all refine the identical UNKNOWN set.
            with cost.time_stage("intermediate_filter"):
                query_enc = self.intervals.encode(query)
                undecided: List[int] = []
                for i in remaining:
                    verdict = classify_intervals(
                        query_enc, self.intervals.encode(self.dataset.polygons[i])
                    )
                    if verdict is IntervalVerdict.INTERSECTING:
                        positives.append(i)
                        cost.interval_hits += 1
                    elif verdict is IntervalVerdict.DISJOINT:
                        cost.interval_drops += 1
                    else:
                        undecided.append(i)
                remaining = undecided

        with cost.time_stage("geometry"):
            if self.executor is not None:
                items = [
                    (i, query, self.dataset.polygons[i]) for i in remaining
                ]
                positives.extend(
                    self.executor.refine_pairs(self.engine, "intersect", items)
                )
                cost.pairs_compared += len(remaining)
            elif self.use_batch and getattr(self.engine, "supports_batch", False):
                items = [
                    (i, query, self.dataset.polygons[i]) for i in remaining
                ]
                positives.extend(self.engine.refine_batch("intersect", items))
                cost.pairs_compared += len(remaining)
            else:
                for i in remaining:
                    cost.pairs_compared += 1
                    if self.engine.polygons_intersect(
                        query, self.dataset.polygons[i]
                    ):
                        positives.append(i)

        positives.sort()
        cost.results = len(positives)
        if obs is not None:
            obs.finish(cost)
        return SelectionResult(ids=positives, cost=cost)

    def run_query_set(self, queries: List[Polygon]) -> CostBreakdown:
        """Run all queries and return the *average* cost per query.

        This is how the paper reports selection numbers: "we use the fifty
        state boundaries in STATES50 as a query set, and report the average
        cost per query".
        """
        if not queries:
            raise ValueError("query set must not be empty")
        total = CostBreakdown()
        for q in queries:
            total.merge(self.run(q).cost)
        return total.scaled(1.0 / len(queries))
