"""Containment selection: objects strictly inside a query region.

The interior filter's second advertised query type (paper Table 1:
"Intersection and Containment").  The pipeline mirrors the intersection
selection, but here the interior filter is in its element: an object whose
MBR is completely covered by interior tiles is *provably* inside the query
polygon, and in the refinement step the hardware test can confirm
containment outright (boundaries disjoint + a vertex inside, see
:mod:`repro.core.containment`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.engine import RefinementEngine
from ..datasets.dataset import SpatialDataset
from ..filters.interior import InteriorFilter
from ..geometry.polygon import Polygon
from ..index.str_pack import str_bulk_load
from ..obs.instrument import observe_pipeline
from .costs import CostBreakdown


@dataclass
class ContainmentResult:
    """Ids of properly-contained objects plus the cost breakdown."""

    ids: List[int]
    cost: CostBreakdown


class ContainmentSelection:
    """Find every dataset object strictly inside a (simple) query polygon."""

    def __init__(
        self,
        dataset: SpatialDataset,
        engine: RefinementEngine,
        interior_level: Optional[int] = None,
    ) -> None:
        if interior_level is not None and interior_level < 0:
            raise ValueError("interior_level must be >= 0")
        self.dataset = dataset
        self.engine = engine
        self.interior_level = interior_level
        self.index = str_bulk_load(
            [(mbr, i) for i, mbr in enumerate(dataset.mbrs)]
        )

    def run(self, query: Polygon) -> ContainmentResult:
        cost = CostBreakdown()
        obs = observe_pipeline("containment", self.engine)

        # MBR filtering: containment requires the MBR inside the query MBR.
        with cost.time_stage("mbr_filter"):
            candidates = [
                i
                for i in self.index.search(query.mbr)
                if query.mbr.contains_rect(self.dataset.mbrs[i])
            ]
            candidates.sort()
        cost.candidates_after_mbr = len(candidates)

        positives: List[int] = []
        remaining = candidates
        if self.interior_level is not None:
            with cost.time_stage("intermediate_filter"):
                interior = InteriorFilter(query, self.interior_level)
                remaining = []
                for i in candidates:
                    # Interior tiles lie in the open interior, so a covered
                    # MBR certifies *proper* containment directly.
                    if interior.covers(self.dataset.mbrs[i]):
                        positives.append(i)
                    else:
                        remaining.append(i)
            cost.filter_positives = len(positives)

        with cost.time_stage("geometry"):
            for i in remaining:
                cost.pairs_compared += 1
                if self.engine.contains_properly(
                    query, self.dataset.polygons[i]
                ):
                    positives.append(i)

        positives.sort()
        cost.results = len(positives)
        if obs is not None:
            obs.finish(cost)
        return ContainmentResult(ids=positives, cost=cost)
