"""Within-distance join (buffer query): pairs within distance D.

The paper's third query class (section 4.4).  Stages per Figure 8:

1. **MBR filtering** - the plane-sweep MBR join with distance D (the MBR
   distance lower-bounds the object distance);
2. **intermediate filtering** - the 0-Object filter (MBRs only), then the
   1-Object filter (actual geometry of the *larger* object) compute distance
   *upper bounds*; pairs with bound <= D are positives without a full
   distance computation;
3. **geometry comparison** - the refinement engine's within-distance test
   decides the rest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.engine import RefinementEngine
from ..datasets.dataset import SpatialDataset
from ..exec.parallel import ParallelExecutor
from ..filters.object_filters import one_object_upper_bound, zero_object_upper_bound
from ..filters.progressive import ConvexHullFilter
from ..index.mbr_join import plane_sweep_mbr_join
from ..obs.instrument import observe_pipeline
from .costs import CostBreakdown


@dataclass
class WithinDistanceResult:
    """Matching index pairs plus the per-stage cost breakdown."""

    pairs: List[Tuple[int, int]]
    cost: CostBreakdown


class WithinDistanceJoin:
    """Executor for within-distance joins at varying distances."""

    def __init__(
        self,
        dataset_a: SpatialDataset,
        dataset_b: SpatialDataset,
        engine: RefinementEngine,
        use_zero_object: bool = True,
        use_one_object: bool = True,
        use_hull_filter: bool = False,
        executor: Optional[ParallelExecutor] = None,
        use_batch: bool = True,
    ) -> None:
        self.dataset_a = dataset_a
        self.dataset_b = dataset_b
        self.engine = engine
        #: Optional parallel batch executor for the geometry stage
        #: (identical results/stats to the serial loop).
        self.executor = executor
        #: Batch the geometry stage through ``engine.refine_batch`` when the
        #: engine supports it (identical results/stats; amortized overhead).
        self.use_batch = use_batch
        self.use_zero_object = use_zero_object
        self.use_one_object = use_one_object
        self.use_hull_filter = use_hull_filter
        self.hulls_a: ConvexHullFilter | None = None
        self.hulls_b: ConvexHullFilter | None = None
        if use_hull_filter:
            # Pre-processed negative filter (Table 1's geometric filter):
            # hulls farther apart than D prove the pair negative.
            self.hulls_a = ConvexHullFilter(dataset_a.polygons)
            self.hulls_b = ConvexHullFilter(dataset_b.polygons)

    def run(self, d: float) -> WithinDistanceResult:
        if d < 0.0:
            raise ValueError("distance must be non-negative")
        cost = CostBreakdown()
        obs = observe_pipeline("within_distance_join", self.engine)
        mbrs_a = self.dataset_a.mbrs
        mbrs_b = self.dataset_b.mbrs
        polys_a = self.dataset_a.polygons
        polys_b = self.dataset_b.polygons

        with cost.time_stage("mbr_filter"):
            candidates = plane_sweep_mbr_join(mbrs_a, mbrs_b, distance=d)
        cost.candidates_after_mbr = len(candidates)

        if self.use_hull_filter:
            assert self.hulls_a is not None and self.hulls_b is not None
            with cost.time_stage("intermediate_filter"):
                candidates = [
                    (i, j)
                    for i, j in candidates
                    if self.hulls_a.may_be_within(i, self.hulls_b, j, d)
                ]

        results: List[Tuple[int, int]] = []
        remaining: List[Tuple[int, int]] = candidates
        if self.use_zero_object or self.use_one_object:
            with cost.time_stage("intermediate_filter"):
                remaining = []
                for i, j in candidates:
                    ra, rb = mbrs_a[i], mbrs_b[j]
                    if self.use_zero_object and zero_object_upper_bound(ra, rb) <= d:
                        results.append((i, j))
                        continue
                    if self.use_one_object:
                        # Retrieve the larger object (by MBR area), as the
                        # paper does; its geometry tightens the bound.
                        if ra.area >= rb.area:
                            bound = one_object_upper_bound(polys_a[i], rb)
                        else:
                            bound = one_object_upper_bound(polys_b[j], ra)
                        if bound <= d:
                            results.append((i, j))
                            continue
                    remaining.append((i, j))
            cost.filter_positives = len(results)

        with cost.time_stage("geometry"):
            if self.executor is not None:
                items = [((i, j), polys_a[i], polys_b[j]) for i, j in remaining]
                results.extend(
                    self.executor.refine_pairs(
                        self.engine, "within_distance", items, distance=d
                    )
                )
                cost.pairs_compared += len(remaining)
            elif self.use_batch and getattr(self.engine, "supports_batch", False):
                items = [((i, j), polys_a[i], polys_b[j]) for i, j in remaining]
                results.extend(
                    self.engine.refine_batch(
                        "within_distance", items, distance=d
                    )
                )
                cost.pairs_compared += len(remaining)
            else:
                for i, j in remaining:
                    cost.pairs_compared += 1
                    if self.engine.within_distance(polys_a[i], polys_b[j], d):
                        results.append((i, j))

        results.sort()
        cost.results = len(results)
        if obs is not None:
            obs.finish(cost)
        return WithinDistanceResult(pairs=results, cost=cost)
