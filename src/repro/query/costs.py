"""Per-stage cost accounting for query pipelines.

The paper's Figures 10-16 all report *computational cost per processing
stage* (Figure 8: MBR filtering, intermediate filtering, geometry
comparison) measured as wall-clock time.  :class:`CostBreakdown` captures
exactly those numbers plus the candidate counts flowing between stages, so
experiments can print the same rows the paper plots.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator


@dataclass
class CostBreakdown:
    """Stage timings (seconds) and stage-to-stage candidate counts."""

    mbr_filter_s: float = 0.0
    intermediate_filter_s: float = 0.0
    geometry_s: float = 0.0

    candidates_after_mbr: int = 0
    filter_positives: int = 0
    pairs_compared: int = 0
    results: int = 0

    @property
    def total_s(self) -> float:
        """Total computational cost (the paper's "total query cost")."""
        return self.mbr_filter_s + self.intermediate_filter_s + self.geometry_s

    def merge(self, other: "CostBreakdown") -> None:
        """Accumulate another query's costs (for averaging query sets)."""
        self.mbr_filter_s += other.mbr_filter_s
        self.intermediate_filter_s += other.intermediate_filter_s
        self.geometry_s += other.geometry_s
        self.candidates_after_mbr += other.candidates_after_mbr
        self.filter_positives += other.filter_positives
        self.pairs_compared += other.pairs_compared
        self.results += other.results

    def scaled(self, factor: float) -> "CostBreakdown":
        """A copy with timings multiplied by ``factor`` (e.g. per-query mean)."""
        return CostBreakdown(
            mbr_filter_s=self.mbr_filter_s * factor,
            intermediate_filter_s=self.intermediate_filter_s * factor,
            geometry_s=self.geometry_s * factor,
            candidates_after_mbr=self.candidates_after_mbr,
            filter_positives=self.filter_positives,
            pairs_compared=self.pairs_compared,
            results=self.results,
        )

    @contextmanager
    def time_stage(self, stage: str) -> Iterator[None]:
        """Accumulate wall-clock time into ``<stage>_s``."""
        attr = f"{stage}_s"
        if not hasattr(self, attr):
            raise ValueError(f"unknown stage {stage!r}")
        start = time.perf_counter()
        try:
            yield
        finally:
            setattr(self, attr, getattr(self, attr) + time.perf_counter() - start)
