"""Per-stage cost accounting for query pipelines.

The paper's Figures 10-16 all report *computational cost per processing
stage* (Figure 8: MBR filtering, intermediate filtering, geometry
comparison) measured as wall-clock time.  :class:`CostBreakdown` captures
exactly those numbers plus the candidate counts flowing between stages, so
experiments can print the same rows the paper plots.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass
from typing import Iterator, Tuple

from ..exec.trace import current_tracer
from ..obs.context import current_context
from ..obs.metrics import current_registry


@dataclass
class CostBreakdown:
    """Stage timings (seconds) and stage-to-stage candidate counts."""

    mbr_filter_s: float = 0.0
    intermediate_filter_s: float = 0.0
    geometry_s: float = 0.0

    # Counts are ints for a single query; a :meth:`scaled` query-set mean
    # holds float averages in the same fields.
    candidates_after_mbr: float = 0
    filter_positives: float = 0
    #: Candidates the interval filter proved INTERSECTING (positives
    #: without refinement) / DISJOINT (dropped without refinement).
    interval_hits: float = 0
    interval_drops: float = 0
    pairs_compared: float = 0
    results: float = 0

    @property
    def total_s(self) -> float:
        """Total computational cost (the paper's "total query cost")."""
        return self.mbr_filter_s + self.intermediate_filter_s + self.geometry_s

    def merge(self, other: "CostBreakdown") -> None:
        """Accumulate another query's costs (for averaging query sets)."""
        self.mbr_filter_s += other.mbr_filter_s
        self.intermediate_filter_s += other.intermediate_filter_s
        self.geometry_s += other.geometry_s
        self.candidates_after_mbr += other.candidates_after_mbr
        self.filter_positives += other.filter_positives
        self.interval_hits += other.interval_hits
        self.interval_drops += other.interval_drops
        self.pairs_compared += other.pairs_compared
        self.results += other.results

    def scaled(self, factor: float) -> "CostBreakdown":
        """A copy with every field multiplied by ``factor``.

        Used to turn a merged query-set total into a per-query mean.  The
        count fields scale along with the timings (as float means) - a
        50-query average that kept the *summed* candidate counts next to
        *averaged* timings would overstate per-query filtering work 50x.
        """
        return CostBreakdown(
            mbr_filter_s=self.mbr_filter_s * factor,
            intermediate_filter_s=self.intermediate_filter_s * factor,
            geometry_s=self.geometry_s * factor,
            candidates_after_mbr=self.candidates_after_mbr * factor,
            filter_positives=self.filter_positives * factor,
            interval_hits=self.interval_hits * factor,
            interval_drops=self.interval_drops * factor,
            pairs_compared=self.pairs_compared * factor,
            results=self.results * factor,
        )

    @classmethod
    def stage_names(cls) -> Tuple[str, ...]:
        """The timeable stage names, in pipeline order."""
        return tuple(
            name[: -len("_s")]
            for name in cls.__dataclass_fields__
            if name.endswith("_s")
        )

    @contextmanager
    def time_stage(self, stage: str) -> Iterator[None]:
        """Accumulate wall-clock time into ``<stage>_s``.

        When a tracer is installed (:mod:`repro.exec.trace`), a span named
        after the stage is emitted as well, so every pipeline gets per-stage
        tracing with no call-site changes.  Likewise, when a metrics
        registry is installed (:mod:`repro.obs.metrics`), the stage time
        accumulates into the ``stage_seconds{stage=...}`` counter and the
        ``stage_duration_s{stage=...}`` histogram - and with neither
        installed, the block costs two global reads and nothing else.
        Only writable stage *fields* are accepted: read-only aggregates
        such as :attr:`total_s` are rejected up front with
        :class:`ValueError` rather than failing on ``setattr``.
        """
        attr = f"{stage}_s"
        if attr not in self.__dataclass_fields__:
            raise ValueError(
                f"unknown stage {stage!r}; expected one of {self.stage_names()}"
            )
        tracer = current_tracer()
        registry = current_registry()
        span = (
            tracer.span(stage, kind="stage")
            if tracer is not None
            else nullcontext()
        )
        with span as live_span:
            start = time.perf_counter()
            try:
                yield
            finally:
                elapsed = time.perf_counter() - start
                setattr(self, attr, getattr(self, attr) + elapsed)
                # Under a traced request whose RequestContext carries a
                # deadline, mark stages that finished past it - the
                # slow-query forensics log points at the first such span.
                if live_span is not None:
                    context = current_context()
                    if context is not None and context.expired():
                        live_span.attributes["over_deadline"] = True
                if registry is not None:
                    registry.counter("stage_seconds", stage=stage).inc(elapsed)
                    registry.histogram("stage_duration_s", stage=stage).observe(
                        elapsed
                    )
