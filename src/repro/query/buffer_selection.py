"""Within-distance selection: objects within distance D of a query region.

The selection form of the paper's buffer query (section 4.4 treats the join
form): given one query polygon, find every dataset object within distance
``D`` of it.  Stages per Figure 8:

1. **MBR filtering** - an R-tree within-distance search with the query
   polygon's MBR (the MBR distance lower-bounds the object distance);
2. **intermediate filtering** - the 0-Object filter on MBRs, then the
   1-Object filter with the *query* polygon as the retrieved geometry (it
   is retrieved once and amortized over every candidate - the cheap
   direction of Chan's filter);
3. **geometry comparison** - the refinement engine's within-distance test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.engine import RefinementEngine
from ..datasets.dataset import SpatialDataset
from ..filters.object_filters import one_object_upper_bound, zero_object_upper_bound
from ..geometry.polygon import Polygon
from ..index.str_pack import str_bulk_load
from ..obs.instrument import observe_pipeline
from .costs import CostBreakdown


@dataclass
class BufferSelectionResult:
    """Ids of objects within distance D, plus the cost breakdown."""

    ids: List[int]
    cost: CostBreakdown


class WithinDistanceSelection:
    """Reusable buffer-query executor over one dataset."""

    def __init__(
        self,
        dataset: SpatialDataset,
        engine: RefinementEngine,
        use_zero_object: bool = True,
        use_one_object: bool = True,
    ) -> None:
        self.dataset = dataset
        self.engine = engine
        self.use_zero_object = use_zero_object
        self.use_one_object = use_one_object
        self.index = str_bulk_load(
            [(mbr, i) for i, mbr in enumerate(dataset.mbrs)]
        )

    def run(self, query: Polygon, d: float) -> BufferSelectionResult:
        if d < 0.0:
            raise ValueError("distance must be non-negative")
        cost = CostBreakdown()
        obs = observe_pipeline("buffer_selection", self.engine)
        mbrs = self.dataset.mbrs
        polygons = self.dataset.polygons
        query_mbr = query.mbr

        with cost.time_stage("mbr_filter"):
            candidates = sorted(
                int(i) for i in self.index.search_within_distance(query_mbr, d)
            )
        cost.candidates_after_mbr = len(candidates)

        positives: List[int] = []
        remaining: List[int] = candidates
        if self.use_zero_object or self.use_one_object:
            with cost.time_stage("intermediate_filter"):
                remaining = []
                for i in candidates:
                    if (
                        self.use_zero_object
                        and zero_object_upper_bound(query_mbr, mbrs[i]) <= d
                    ):
                        positives.append(i)
                        continue
                    if (
                        self.use_one_object
                        and one_object_upper_bound(query, mbrs[i]) <= d
                    ):
                        positives.append(i)
                        continue
                    remaining.append(i)
            cost.filter_positives = len(positives)

        with cost.time_stage("geometry"):
            for i in remaining:
                cost.pairs_compared += 1
                if self.engine.within_distance(query, polygons[i], d):
                    positives.append(i)

        positives.sort()
        cost.results = len(positives)
        if obs is not None:
            obs.finish(cost)
        return BufferSelectionResult(ids=positives, cost=cost)
