"""Query pipelines: the three query classes of the paper's evaluation,
staged per Figure 8 with per-stage cost accounting."""

from .buffer_selection import BufferSelectionResult, WithinDistanceSelection
from .containment import ContainmentResult, ContainmentSelection
from .costs import CostBreakdown
from .join import IntersectionJoin, JoinResult
from .nearest import NearestNeighborQuery, NearestResult
from .selection import IntersectionSelection, SelectionResult
from .within_distance import WithinDistanceJoin, WithinDistanceResult

__all__ = [
    "BufferSelectionResult",
    "ContainmentResult",
    "ContainmentSelection",
    "CostBreakdown",
    "IntersectionJoin",
    "IntersectionSelection",
    "JoinResult",
    "NearestNeighborQuery",
    "NearestResult",
    "SelectionResult",
    "WithinDistanceJoin",
    "WithinDistanceSelection",
    "WithinDistanceResult",
]
