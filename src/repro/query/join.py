"""Intersection join: dataset |><| dataset on polygon intersection.

The paper's second query class (section 4.3): all pairs (a, b) whose
polygons intersect.  Stages per Figure 8:

1. **MBR filtering** - the plane-sweep MBR join produces candidate pairs;
2. **intermediate filtering** (optional) - the progressive convex-hull
   filter (``use_hull_filter``) and/or the raster-interval second filter
   (``use_intervals``): precomputed sorted-interval encodings on a
   pair-common grid settle candidates in both directions with pure
   interval algebra, so refinement only sees the genuinely ambiguous
   pairs;
3. **geometry comparison** - the refinement engine decides each pair.

(The paper applies no intermediate filter to intersection joins - the
interior filter is a selection-side technique - so the paper-faithful
pipeline goes straight from MBR pairs to refinement; both knobs here are
off by default and bit-identical in results when on.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.engine import RefinementEngine
from ..datasets.dataset import SpatialDataset
from ..exec.parallel import ParallelExecutor
from ..filters.intervals import (
    DEFAULT_INTERVAL_LEVEL,
    IntervalIndex,
    IntervalVerdict,
    classify_intervals,
)
from ..filters.progressive import ConvexHullFilter
from ..index.mbr_join import plane_sweep_mbr_join
from ..obs.instrument import observe_pipeline
from .costs import CostBreakdown


@dataclass
class JoinResult:
    """Matching index pairs plus the per-stage cost breakdown."""

    pairs: List[Tuple[int, int]]
    cost: CostBreakdown


class IntersectionJoin:
    """Executor for one intersection join."""

    def __init__(
        self,
        dataset_a: SpatialDataset,
        dataset_b: SpatialDataset,
        engine: RefinementEngine,
        use_hull_filter: bool = False,
        executor: Optional[ParallelExecutor] = None,
        use_batch: bool = True,
        use_intervals: bool = False,
        interval_level: int = DEFAULT_INTERVAL_LEVEL,
    ) -> None:
        self.dataset_a = dataset_a
        self.dataset_b = dataset_b
        self.engine = engine
        self.use_hull_filter = use_hull_filter
        #: Render-free interval second filter (off by default): both
        #: layers encode once at build time on one grid spanning the
        #: union of their worlds - the pair-common grid the interval
        #: certificates require.
        self.intervals: Optional[IntervalIndex] = (
            IntervalIndex.for_datasets([dataset_a, dataset_b], level=interval_level)
            if use_intervals
            else None
        )
        #: When set, the geometry stage refines candidate shards on the
        #: executor's worker pool; results and stats are identical to the
        #: serial loop (see :mod:`repro.exec.parallel`).
        self.executor = executor
        #: Batch the geometry stage through ``engine.refine_batch`` when the
        #: engine supports it (identical results/stats; amortized overhead).
        self.use_batch = use_batch
        self.hulls_a: ConvexHullFilter | None = None
        self.hulls_b: ConvexHullFilter | None = None
        if use_hull_filter:
            # The pre-processing step Table 1 attributes to the geometric
            # filter: one convex hull per object, built up front.
            self.hulls_a = ConvexHullFilter(dataset_a.polygons)
            self.hulls_b = ConvexHullFilter(dataset_b.polygons)

    def run(self) -> JoinResult:
        cost = CostBreakdown()
        obs = observe_pipeline("join", self.engine)

        with cost.time_stage("mbr_filter"):
            candidates = plane_sweep_mbr_join(
                self.dataset_a.mbrs, self.dataset_b.mbrs
            )
        cost.candidates_after_mbr = len(candidates)

        if self.use_hull_filter:
            assert self.hulls_a is not None and self.hulls_b is not None
            with cost.time_stage("intermediate_filter"):
                candidates = [
                    (i, j)
                    for i, j in candidates
                    if self.hulls_a.may_intersect(i, self.hulls_b, j)
                ]

        results: List[Tuple[int, int]] = []
        polys_a = self.dataset_a.polygons
        polys_b = self.dataset_b.polygons

        if self.intervals is not None:
            # Settle candidates with the precomputed encodings before the
            # geometry dispatch: the serial, batched, and sharded paths
            # then all refine the identical UNKNOWN set.
            with cost.time_stage("intermediate_filter"):
                undecided: List[Tuple[int, int]] = []
                for i, j in candidates:
                    verdict = classify_intervals(
                        self.intervals.encode(polys_a[i]),
                        self.intervals.encode(polys_b[j]),
                    )
                    if verdict is IntervalVerdict.INTERSECTING:
                        results.append((i, j))
                        cost.interval_hits += 1
                    elif verdict is IntervalVerdict.DISJOINT:
                        cost.interval_drops += 1
                    else:
                        undecided.append((i, j))
                candidates = undecided

        with cost.time_stage("geometry"):
            if self.executor is not None:
                items = [((i, j), polys_a[i], polys_b[j]) for i, j in candidates]
                results.extend(
                    self.executor.refine_pairs(self.engine, "intersect", items)
                )
                cost.pairs_compared += len(candidates)
            elif self.use_batch and getattr(self.engine, "supports_batch", False):
                items = [((i, j), polys_a[i], polys_b[j]) for i, j in candidates]
                results.extend(self.engine.refine_batch("intersect", items))
                cost.pairs_compared += len(candidates)
            else:
                for i, j in candidates:
                    cost.pairs_compared += 1
                    if self.engine.polygons_intersect(polys_a[i], polys_b[j]):
                        results.append((i, j))

        results.sort()
        cost.results = len(results)
        if obs is not None:
            obs.finish(cost)
        return JoinResult(pairs=results, cost=cost)
