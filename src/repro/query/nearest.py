"""Nearest-neighbor queries (the paper's section-5 extension).

Given a query point, find the dataset object(s) at minimum distance.  Two
strategies:

* **software** - the classic best-first R-tree traversal
  (:func:`repro.index.nearest.rtree_nearest`): MBR distances order the
  search, and every reached object pays an exact point-to-polygon distance
  computation over all of its edges.
* **hardware** - the Voronoi approach the paper announces: collect a
  candidate neighborhood with the R-tree, render each candidate's boundary
  once into a window centered on the query point, and build the discrete
  Voronoi diagram of the candidates (simulating Hoff et al.'s z-buffered
  cone rendering).  The diagram's per-site distances at the query pixel,
  padded by the cell-quantization slack, prune every candidate that
  provably cannot win; only the survivors pay the exact edge scan.

Both strategies return identical results (property-tested); the hardware
strategy replaces most exact edge scans of complex polygons with one
fixed-resolution rendering pass per candidate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.config import HardwareConfig
from ..datasets.dataset import SpatialDataset
from ..geometry.distance import point_to_polygon_distance
from ..geometry.point import Point
from ..geometry.rect import Rect
from ..gpu.pipeline import GraphicsPipeline
from ..gpu.state import DEFAULT_AA_LINE_WIDTH
from ..gpu.voronoi import VORONOI_SLACK, site_distances_at
from ..index.nearest import NearestStats, rtree_nearest
from ..index.str_pack import str_bulk_load


@dataclass
class NearestResult:
    """The k nearest objects with their exact distances, plus work stats."""

    neighbors: List[Tuple[float, int]]
    exact_distance_calls: int = 0
    candidates_rendered: int = 0


class NearestNeighborQuery:
    """A reusable nearest-neighbor executor over one dataset."""

    def __init__(
        self,
        dataset: SpatialDataset,
        hardware: Optional[HardwareConfig] = None,
    ) -> None:
        self.dataset = dataset
        self.index = str_bulk_load(
            [(mbr, i) for i, mbr in enumerate(dataset.mbrs)]
        )
        self.hardware = hardware
        self._pipeline: Optional[GraphicsPipeline] = None
        if hardware is not None:
            self._pipeline = GraphicsPipeline(
                hardware.resolution,
                limits=hardware.limits,
                raster_backend=hardware.raster_backend,
            )

    # -- software strategy ---------------------------------------------------

    def run_software(self, query: Point, k: int = 1) -> NearestResult:
        """Best-first R-tree search with exact refinement distances."""
        stats = NearestStats()
        polygons = self.dataset.polygons

        def exact(oid) -> float:
            return point_to_polygon_distance(query, polygons[oid])

        pairs = rtree_nearest(self.index, query, exact, k=k, stats=stats)
        return NearestResult(
            neighbors=[(d, int(oid)) for d, oid in pairs],
            exact_distance_calls=stats.exact_distance_calls,
        )

    # -- hardware strategy -----------------------------------------------------

    def run_hardware(self, query: Point, k: int = 1) -> NearestResult:
        """Voronoi-filtered search: render candidates, prune, then refine."""
        if self._pipeline is None:
            raise ValueError(
                "construct NearestNeighborQuery with a HardwareConfig to "
                "use the hardware strategy"
            )
        polygons = self.dataset.polygons
        mbrs = self.dataset.mbrs

        # Candidate neighborhood: everything whose MBR could contain one of
        # the k nearest objects.  The k-th smallest (MBR min-distance +
        # MBR diagonal) upper-bounds the k-th exact distance, because each
        # object lies inside its MBR.
        bounds = sorted(
            mbr.distance_to_point(query)
            + float(np.hypot(mbr.width, mbr.height))
            for mbr in mbrs
        )
        upper = bounds[min(k - 1, len(bounds) - 1)]
        candidate_ids = self.index.search_within_distance(
            Rect(query.x, query.y, query.x, query.y), upper
        )
        candidate_ids = sorted(int(c) for c in candidate_ids)
        if not candidate_ids:  # pragma: no cover - upper bound guarantees one
            candidate_ids = list(range(len(polygons)))

        # Render each candidate's boundary into a window around the query.
        pl = self._pipeline
        window = Rect(
            query.x - upper, query.y - upper, query.x + upper, query.y + upper
        )
        pl.set_data_window(window)
        st = pl.state
        st.line_width = DEFAULT_AA_LINE_WIDTH
        st.point_size = DEFAULT_AA_LINE_WIDTH
        st.cap_points = False
        st.reset_fragment_ops()
        masks = [
            pl.render_coverage_mask(polygons[i].edges_array)
            for i in candidate_ids
        ]
        for _ in masks:
            pl.counters.distance_field_pixels += pl.width * pl.height

        qx, qy = pl.data_to_window(query.x, query.y)
        j = min(max(int(qy), 0), pl.height - 1)
        i = min(max(int(qx), 0), pl.width - 1)
        px_distances = site_distances_at(masks, (j, i))

        # Refinement, best-first over the diagram distances.  The diagram's
        # per-site value lower-bounds the true *boundary* distance by the
        # quantization slack, so once the k-th best exact distance beats the
        # next candidate's (value - slack), the rest cannot win.
        #
        # Containment is the one case where the region distance (0) is less
        # than the boundary distance the cones measure, so candidates whose
        # MBR contains the query are refined unconditionally first.
        exact_calls = 0
        scored: List[Tuple[float, int]] = []
        deferred: List[Tuple[float, int]] = []
        for pos, oid in enumerate(candidate_ids):
            if mbrs[oid].contains_point(query):
                exact_calls += 1
                scored.append(
                    (point_to_polygon_distance(query, polygons[oid]), oid)
                )
            else:
                deferred.append((float(px_distances[pos]), oid))
        scored.sort()
        deferred.sort()

        scale = pl.scale
        for px, oid in deferred:
            if len(scored) >= k:
                kth_exact_px = scored[k - 1][0] * scale
                if px - VORONOI_SLACK > kth_exact_px:
                    break  # deferred is sorted: nothing further can win
            exact_calls += 1
            scored.append(
                (point_to_polygon_distance(query, polygons[oid]), oid)
            )
            scored.sort()
        return NearestResult(
            neighbors=scored[:k],
            exact_distance_calls=exact_calls,
            candidates_rendered=len(candidate_ids),
        )

    def run(self, query: Point, k: int = 1) -> NearestResult:
        """Dispatch on construction: hardware when configured, else software."""
        if self._pipeline is not None:
            return self.run_hardware(query, k)
        return self.run_software(query, k)
