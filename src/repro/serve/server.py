"""The asyncio TCP front-end: JSON-lines over a socket, one envelope per line.

The protocol is deliberately minimal - newline-delimited JSON envelopes,
so a client can be three lines of any language::

    {"kind": "query", "request": {"schema": "repro.serve/request@1",
                                  "op": "selection", "query_index": 3}}
    {"kind": "response", "response": {"schema": "repro.serve/response@1",
                                      "status": "ok", ...}}

Envelope kinds:

* ``query`` - execute the attached :class:`~repro.serve.schema.QueryRequest`;
* ``metrics`` - the service registry, both Prometheus text and the JSON
  snapshot;
* ``health`` - readiness verdict, queue depth / inflight, per-op windowed
  latency and rates, SLO burn rates, firing alerts, worker heartbeats
  (:mod:`repro.serve.health`); always answerable, richest when the
  service runs with windowed health enabled;
* ``describe`` - the resident workload and service limits;
* ``ping`` - liveness (answers ``pong``);
* ``shutdown`` - acknowledge, then stop accepting connections.

The event loop only parses and routes; every query is offloaded to a
thread pool sized to the service's :attr:`~repro.serve.service.QueryService.capacity`
via :meth:`~repro.serve.service.QueryService.asubmit`, so slow pipeline
work never blocks other connections' admission (which is how a shed
response can overtake a long-running query on the same socket server).
"""

from __future__ import annotations

import asyncio
import json
import socket
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Tuple

from .schema import QueryRequest
from .service import QueryService

#: Envelope kinds the front-end answers.
KINDS = ("query", "metrics", "health", "describe", "ping", "shutdown")

#: Refuse single lines beyond this size (a malformed client, not a query).
MAX_LINE_BYTES = 1 << 20


class ServeFrontend:
    """One TCP listener bound to one :class:`QueryService`."""

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_offload_threads: int = 128,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, min(service.capacity, max_offload_threads)),
            thread_name_prefix="serve-exec",
        )
        self._shutdown = asyncio.Event()

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and listen; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def serve_until_shutdown(self) -> None:
        """Serve connections until a ``shutdown`` envelope arrives."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._shutdown.wait()

    async def stop(self) -> None:
        self._shutdown.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._executor.shutdown(wait=True)

    # -- connection handling ----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not self._shutdown.is_set():
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                if len(line) > MAX_LINE_BYTES:
                    await self._send(writer, _error("request line too long"))
                    break
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                reply = await self._dispatch(text)
                await self._send(writer, reply)
                if reply.get("kind") == "shutdown-ack":
                    self._shutdown.set()
                    break
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, text: str) -> Dict[str, Any]:
        try:
            envelope = json.loads(text)
        except json.JSONDecodeError as exc:
            return _error(f"invalid JSON: {exc}")
        if not isinstance(envelope, dict):
            return _error("envelope must be a JSON object")
        kind = envelope.get("kind")
        if kind == "ping":
            return {"kind": "pong"}
        if kind == "describe":
            return {"kind": "describe", "info": self.service.describe()}
        if kind == "metrics":
            return {
                "kind": "metrics",
                "text": self.service.metrics_text(),
                "snapshot": self.service.metrics_snapshot(),
            }
        if kind == "health":
            return {"kind": "health", "health": self.service.health()}
        if kind == "shutdown":
            return {"kind": "shutdown-ack"}
        if kind == "query":
            try:
                request = QueryRequest.from_dict(envelope.get("request", {}))
            except (ValueError, TypeError) as exc:
                return _error(f"bad request: {exc}")
            response = await self.service.asubmit(request, self._executor)
            return {"kind": "response", "response": response.to_dict()}
        return _error(f"unknown kind {kind!r}; expected one of {KINDS}")

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, payload: Dict[str, Any]) -> None:
        writer.write(json.dumps(payload).encode("utf-8") + b"\n")
        await writer.drain()


def _error(message: str) -> Dict[str, Any]:
    return {"kind": "error", "error": message}


def run_server(
    service: QueryService, host: str = "127.0.0.1", port: int = 8753
) -> None:
    """Blocking convenience runner for ``python -m repro.serve serve``."""

    async def _main() -> None:
        frontend = ServeFrontend(service, host=host, port=port)
        bound_host, bound_port = await frontend.start()
        print(f"repro.serve listening on {bound_host}:{bound_port}")
        try:
            await frontend.serve_until_shutdown()
        finally:
            await frontend.stop()

    asyncio.run(_main())


def send_envelope(
    host: str,
    port: int,
    envelope: Dict[str, Any],
    timeout: Optional[float] = 30.0,
) -> Dict[str, Any]:
    """Blocking one-shot client: send one envelope, read one reply.

    ``timeout`` bounds the connect and every socket read (``None`` =
    wait forever - the right choice against a server mid-way through a
    heavy join on a slow machine; the CLIs thread their ``--timeout``
    through here).  Used by tests, ``python -m repro.serve ping`` and
    ``python -m repro.serve top``; real clients should hold the
    connection open and pipeline envelopes.
    """
    with socket.create_connection((host, port), timeout=timeout) as conn:
        conn.sendall(json.dumps(envelope).encode("utf-8") + b"\n")
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = conn.recv(65536)
            if not chunk:
                break
            buf += chunk
    if not buf:
        raise ConnectionError("server closed the connection without replying")
    return json.loads(buf.decode("utf-8"))


__all__ = ["KINDS", "MAX_LINE_BYTES", "ServeFrontend", "run_server", "send_envelope"]
