"""Slow-query forensics: structured records for every request worth autopsy.

Service-wide histograms say *that* p99 regressed; they cannot say *why
this request* was slow.  The slow-query log captures, per offending
request, everything the per-stage cost analysis (paper Fig. 13) needs to
assign blame:

* the request and its terminal status (every ``shed``/``timeout``/``error``
  is logged regardless of latency - they are forensic events by
  definition; ``ok`` requests log when ``total_s`` exceeds the
  configured threshold);
* the latency split (queue wait vs execution vs total) and the admission
  queue depth observed at completion;
* the request's span tree (when tracing is on), its EXPLAIN funnel with
  the exact Fig-13 identities re-checked per record, the
  :class:`~repro.query.costs.CostBreakdown` stage seconds, and the
  cache hit/miss deltas of the serving engine across the request.

Records are JSON lines (schema-tagged ``repro.serve/slowlog@1``),
appended live under a lock so concurrent worker threads never interleave
partial lines, and mirrored in a bounded in-memory ring for tests and the
``metrics``-style introspection paths.  ``python -m repro.serve slowlog
FILE --top K`` summarizes a log offline.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Sequence, Union

#: Version tag of one slowlog record (bump on incompatible change).
SLOWLOG_SCHEMA = "repro.serve/slowlog@1"


@dataclass(frozen=True)
class SlowLogConfig:
    """What the slow-query log captures and where it goes."""

    #: ``ok`` requests slower than this (seconds) are logged.  ``0.0``
    #: logs every request (useful for smoke runs); non-ok outcomes are
    #: always logged regardless.
    threshold_s: float = 0.25
    #: Append records to this JSONL path (``None`` = in-memory only).
    path: Optional[str] = None
    #: Records retained in memory (oldest evicted first).
    max_records: int = 1_000

    def __post_init__(self) -> None:
        if self.threshold_s < 0:
            raise ValueError(
                f"threshold_s must be >= 0, got {self.threshold_s}"
            )
        if self.max_records < 1:
            raise ValueError(
                f"max_records must be >= 1, got {self.max_records}"
            )


class SlowQueryLog:
    """Thread-safe sink for slow-query records (JSONL file + ring)."""

    def __init__(self, config: SlowLogConfig) -> None:
        self.config = config
        self._records: Deque[Dict[str, Any]] = deque(maxlen=config.max_records)
        self._lock = threading.Lock()
        self.logged = 0

    def should_log(self, status: str, total_s: float) -> bool:
        """Non-ok outcomes always; ok outcomes beyond the threshold."""
        if status != "ok":
            return True
        return total_s >= self.config.threshold_s

    def record(self, entry: Dict[str, Any]) -> None:
        """Append one record (already built by :func:`build_record`)."""
        line = json.dumps(entry, sort_keys=True)
        with self._lock:
            self._records.append(entry)
            self.logged += 1
            if self.config.path is not None:
                # Append under the lock: concurrent worker threads must
                # never interleave partial JSON lines.
                with open(self.config.path, "a", encoding="utf-8") as f:
                    f.write(line + "\n")

    def records(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


def build_record(
    request: Any,
    response: Any,
    *,
    spans: Sequence[Any] = (),
    funnel: Optional[Any] = None,
    cost: Optional[Any] = None,
    cache_delta: Optional[Dict[str, Dict[str, int]]] = None,
    queue_depth: Optional[int] = None,
) -> Dict[str, Any]:
    """Assemble one slowlog record from the request's artifacts.

    ``request``/``response`` are the serve schema types; ``spans`` are
    live :class:`~repro.exec.trace.Span` objects or dicts; ``funnel`` is a
    :class:`~repro.obs.explain.QueryFunnel` (its identity checks are
    re-run here and any violations stored - a slowlog whose funnels fail
    the Fig-13 identities is itself a bug report); ``cost`` a
    :class:`~repro.query.costs.CostBreakdown`.
    """
    record: Dict[str, Any] = {
        "schema": SLOWLOG_SCHEMA,
        "logged_unix_s": time.time(),
        "trace_id": response.trace_id,
        "status": response.status,
        "op": response.op,
        "request": request.to_dict(),
        "wait_s": response.wait_s,
        "exec_s": response.exec_s,
        "total_s": response.total_s,
    }
    if response.worker is not None:
        record["worker"] = response.worker
    if response.error is not None:
        record["error"] = response.error
    if queue_depth is not None:
        record["queue_depth"] = queue_depth
    if spans:
        span_dicts = [
            s if isinstance(s, dict) else s.to_dict() for s in spans
        ]
        record["spans"] = span_dicts
        record["over_deadline_stages"] = sorted(
            {
                s["name"]
                for s in span_dicts
                if (s.get("attributes") or {}).get("over_deadline")
            }
        )
    if funnel is not None:
        record["funnel"] = funnel.to_dict()
        record["funnel_violations"] = funnel.check()
    if cost is not None:
        record["cost"] = {
            name: getattr(cost, name)
            for name in type(cost).__dataclass_fields__
        }
    if cache_delta is not None:
        record["cache_delta"] = cache_delta
    return record


# -- offline analysis ---------------------------------------------------------


def load_slowlog(source: Union[str, Any]) -> List[Dict[str, Any]]:
    """Read slowlog records from a JSONL path or open text file."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as f:
            return load_slowlog(f)
    records: List[Dict[str, Any]] = []
    for lineno, line in enumerate(source, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {lineno}: not valid JSON ({exc})") from None
        schema = record.get("schema")
        if schema != SLOWLOG_SCHEMA:
            raise ValueError(
                f"line {lineno}: unsupported slowlog schema {schema!r};"
                f" expected {SLOWLOG_SCHEMA!r}"
            )
        records.append(record)
    return records


def summarize_slowlog(
    records: Sequence[Dict[str, Any]], top: int = 5
) -> str:
    """Human summary: status/op breakdown plus the top-K slowest requests."""
    if top < 1:
        raise ValueError(f"top must be >= 1, got {top}")
    if not records:
        return "slowlog: no records"
    by_status: Dict[str, int] = {}
    by_op: Dict[str, int] = {}
    violations = 0
    for r in records:
        by_status[r.get("status", "?")] = by_status.get(r.get("status", "?"), 0) + 1
        by_op[r.get("op", "?")] = by_op.get(r.get("op", "?"), 0) + 1
        if r.get("funnel_violations"):
            violations += 1
    lines = [
        f"slowlog: {len(records)} record(s)  "
        + "  ".join(f"{k}={v}" for k, v in sorted(by_status.items()))
        + "  |  "
        + "  ".join(f"{k}={v}" for k, v in sorted(by_op.items()))
    ]
    if violations:
        lines.append(
            f"!! {violations} record(s) with funnel identity violations"
        )
    ranked = sorted(
        records, key=lambda r: r.get("total_s", 0.0), reverse=True
    )[:top]
    lines.append(f"== top {min(top, len(records))} by total_s ==")
    for rank, r in enumerate(ranked, start=1):
        wait = r.get("wait_s", 0.0)
        execute = r.get("exec_s", 0.0)
        total = r.get("total_s", 0.0)
        stages = ""
        cost = r.get("cost") or {}
        stage_parts = [
            f"{name[: -len('_s')]}={cost[name] * 1e3:.2f}ms"
            for name in ("mbr_filter_s", "intermediate_filter_s", "geometry_s")
            if cost.get(name)
        ]
        if stage_parts:
            stages = "  [" + " ".join(stage_parts) + "]"
        over = r.get("over_deadline_stages") or []
        lines.append(
            f"{rank}. trace={r.get('trace_id')} op={r.get('op')}"
            f" status={r.get('status')}"
            f" total={total * 1e3:.2f}ms"
            f" (wait {wait * 1e3:.2f}ms + exec {execute * 1e3:.2f}ms)"
            f" worker={r.get('worker', '-')}{stages}"
            + (f" over_deadline={','.join(over)}" if over else "")
            + (f" error={r.get('error')!r}" if r.get("error") else "")
        )
    return "\n".join(lines)


__all__ = [
    "SLOWLOG_SCHEMA",
    "SlowLogConfig",
    "SlowQueryLog",
    "build_record",
    "load_slowlog",
    "summarize_slowlog",
]
