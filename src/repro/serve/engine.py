"""Persistent serving engines: warm pipelines, one engine per worker.

Everything before this layer was batch: build datasets, build an engine,
run one experiment, throw it all away.  A serving process inverts that -
the expensive substrate must be built **once** and reused for millions of
queries:

* datasets are loaded once per process (:class:`ServingWorkload`) and
  shared read-only by every worker;
* each worker owns one :class:`ServingEngine`: a private refinement
  engine (one simulated GL context per worker, the same
  one-context-per-thread rule :mod:`repro.exec.parallel` mirrors), the
  STR-packed R-tree of the selection pipeline pre-built at startup, and
  the :mod:`repro.cache` layers resolved from the workload's
  :class:`~repro.cache.CacheConfig` - warm across requests instead of
  rebuilt per query;
* :class:`EnginePool` hands engines to requests one-at-a-time (engines
  accumulate stats and own mutable pipeline state, so an engine serves
  exactly one request at a time).

The three resident pipelines mirror the paper's query classes on the same
layers the benchmarks use: selection of STATES50 boundaries against the
LANDC selection layer, the LANDC |><| LANDO intersection join, and the
LANDC |><| LANDO within-distance join (distance chosen per request,
scaled by :func:`~repro.datasets.base_distance`).

Results are **bit-identical to direct engine calls** by construction: the
serving layer adds no execution path of its own - it calls the exact
pipeline objects (:class:`~repro.query.selection.IntersectionSelection`,
:class:`~repro.query.join.IntersectionJoin`,
:class:`~repro.query.within_distance.WithinDistanceJoin`) a batch caller
would, with the backend (serial / batched / sharded) chosen by the
workload config.
"""

from __future__ import annotations

import queue
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..bench.scales import get_scale
from ..cache import CacheConfig
from ..core.config import HardwareConfig
from ..core.engine import HardwareEngine, RefinementEngine, SoftwareEngine
from ..datasets import base_distance
from ..exec.parallel import ParallelExecutor
from ..filters.intervals import DEFAULT_INTERVAL_LEVEL
from ..query.costs import CostBreakdown
from ..query.join import IntersectionJoin
from ..query.selection import IntersectionSelection
from ..query.within_distance import WithinDistanceJoin
from .schema import QueryRequest

#: Geometry-stage backends a workload may select.
BACKENDS = ("serial", "batched", "sharded")


@dataclass(frozen=True)
class WorkloadConfig:
    """What one serving process hosts, resolved once at startup."""

    scale: str = "tiny"
    #: Refinement engine kind: "hardware" or "software".
    engine: str = "hardware"
    #: Hardware window resolution (ignored for the software engine).
    resolution: int = 8
    #: Geometry-stage backend: "serial" (per-pair loop), "batched"
    #: (atlas-packed hardware batches), or "sharded" (ParallelExecutor
    #: over a process pool, per worker).
    backend: str = "batched"
    #: Process-pool width for the "sharded" backend.
    shard_workers: int = 2
    #: Memoization layers, resolved here - never from the process default -
    #: so every pool engine is built with the same pinned behavior.
    cache: CacheConfig = CacheConfig.disabled()
    #: Selection intermediate filter level (None = off, the default).
    interior_level: Optional[int] = None
    #: Raster-interval second filter on the intersection selection/join
    #: pipelines (off by default; results are bit-identical either way).
    use_intervals: bool = False
    #: Grid refinement of the interval filter (2^level cells per side).
    interval_level: int = DEFAULT_INTERVAL_LEVEL

    def __post_init__(self) -> None:
        if self.engine not in ("hardware", "software"):
            raise ValueError(
                f"unknown engine {self.engine!r}; expected hardware|software"
            )
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if self.shard_workers < 1:
            raise ValueError(
                f"shard_workers must be >= 1, got {self.shard_workers}"
            )
        if not 0 <= self.interval_level <= 12:
            raise ValueError(
                f"interval_level must be in [0, 12], got {self.interval_level}"
            )

    def build_engine(self) -> RefinementEngine:
        if self.engine == "software":
            return SoftwareEngine(cache=self.cache)
        return HardwareEngine(
            HardwareConfig(resolution=self.resolution, cache=self.cache)
        )


class ServingWorkload:
    """The shared, read-only data substrate of one serving process."""

    def __init__(self, config: WorkloadConfig) -> None:
        self.config = config
        scale = get_scale(config.scale)
        #: Selection data layer and resident query set (paper section 4.2).
        self.selection_data = scale.load("LANDC", role="selection")
        self.queries = list(scale.load("STATES50", role="selection").polygons)
        #: Join partners (paper sections 4.3-4.4).
        self.join_a = scale.load("LANDC", role="join")
        self.join_b = scale.load("LANDO", role="join")
        #: The distance the within-distance pipeline considers "1.0x"
        #: (clients send absolute distances; this is published so they can
        #: scale sensibly).
        self.base_distance = base_distance(self.join_a, self.join_b)

    def describe(self) -> dict:
        return {
            "scale": self.config.scale,
            "engine": self.config.engine,
            "backend": self.config.backend,
            "use_intervals": self.config.use_intervals,
            "selection_objects": len(self.selection_data.polygons),
            "query_set": len(self.queries),
            "join_a_objects": len(self.join_a.polygons),
            "join_b_objects": len(self.join_b.polygons),
            "base_distance": self.base_distance,
        }


class ServingEngine:
    """One worker's private engine plus its three warm pipelines."""

    def __init__(self, worker_id: int, workload: ServingWorkload) -> None:
        config = workload.config
        self.worker_id = worker_id
        self.workload = workload
        self.engine = config.build_engine()
        #: Requests this engine has started executing (deterministic in
        #: total across the pool; the health envelope's worker roster
        #: reports it as a liveness signal alongside the heartbeats).
        self.requests_served = 0
        use_batch = config.backend == "batched"
        self.executor: Optional[ParallelExecutor] = (
            ParallelExecutor(workers=config.shard_workers)
            if config.backend == "sharded"
            else None
        )
        # Pipelines are built once: the selection R-tree packs here, at
        # startup, and is reused by every request this engine serves.
        self.selection = IntersectionSelection(
            workload.selection_data,
            self.engine,
            interior_level=config.interior_level,
            executor=self.executor,
            use_batch=use_batch,
            use_intervals=config.use_intervals,
            interval_level=config.interval_level,
        )
        self.join = IntersectionJoin(
            workload.join_a,
            workload.join_b,
            self.engine,
            executor=self.executor,
            use_batch=use_batch,
            use_intervals=config.use_intervals,
            interval_level=config.interval_level,
        )
        self.within = WithinDistanceJoin(
            workload.join_a,
            workload.join_b,
            self.engine,
            executor=self.executor,
            use_batch=use_batch,
        )

    def execute(self, request: QueryRequest) -> Tuple[List[Any], CostBreakdown]:
        """Run one validated request; returns (results, cost breakdown).

        The result payload is exactly what the underlying pipeline
        returns - the serving layer never re-orders or re-encodes it -
        so responses stay bit-identical to direct engine calls.
        """
        self.requests_served += 1
        if request.op == "selection":
            assert request.query_index is not None
            if request.query_index >= len(self.workload.queries):
                raise IndexError(
                    f"query_index {request.query_index} out of range "
                    f"(resident query set has {len(self.workload.queries)})"
                )
            res = self.selection.run(self.workload.queries[request.query_index])
            return res.ids, res.cost
        if request.op == "join":
            res = self.join.run()
            return res.pairs, res.cost
        if request.op == "within_distance":
            assert request.distance is not None
            res = self.within.run(request.distance)
            return res.pairs, res.cost
        raise ValueError(f"unknown op {request.op!r}")

    def execute_forensic(
        self, request: QueryRequest
    ) -> Tuple[List[Any], CostBreakdown, Any, Dict[str, Dict[str, int]]]:
        """Run one request with per-request EXPLAIN and cache attribution.

        Returns ``(results, cost, funnel, cache_delta)``.  The funnel is
        the engine's RefinementStats *delta* across this request and the
        cache delta the hit/miss/eviction movement of each enabled cache
        layer - both safe to attribute to this request alone because the
        pool checks an engine out to exactly one request at a time.
        Results are the same object :meth:`execute` would return: the
        forensic path only reads counters around the call.
        """
        from ..obs.explain import explain_run

        cache_before = {
            label: (s.hits, s.misses, s.evictions)
            for label, s in self.engine.caches.stats().items()
        }
        captured: Dict[str, Any] = {}

        def run() -> Any:
            results, cost = self.execute(request)
            captured["results"] = results
            # explain_run reads ``result.cost``; hand it a shim since
            # execute() returns a tuple, not a pipeline result object.
            return type("_Run", (), {"cost": cost})()

        shim, funnel = explain_run(request.op, self.engine, run)
        cache_delta = {
            label: {
                "hits": s.hits - cache_before.get(label, (0, 0, 0))[0],
                "misses": s.misses - cache_before.get(label, (0, 0, 0))[1],
                "evictions": s.evictions - cache_before.get(label, (0, 0, 0))[2],
            }
            for label, s in self.engine.caches.stats().items()
        }
        return captured["results"], shim.cost, funnel, cache_delta

    def warm(self) -> None:
        """Prime the caches/pipelines with one cheap request per op."""
        if self.workload.queries:
            self.execute(QueryRequest(op="selection", query_index=0))

    def close(self) -> None:
        if self.executor is not None:
            self.executor.close()


class EnginePool:
    """A fixed set of :class:`ServingEngine` workers, checked out per request."""

    def __init__(
        self,
        workload: ServingWorkload,
        size: int,
        warm: bool = False,
    ) -> None:
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self.workload = workload
        self.size = size
        self.engines = [ServingEngine(i, workload) for i in range(size)]
        self._free: "queue.Queue[ServingEngine]" = queue.Queue()
        for engine in self.engines:
            if warm:
                engine.warm()
            self._free.put(engine)
        self._closed = threading.Event()

    def acquire(self, timeout: Optional[float]) -> Optional[ServingEngine]:
        """Check out an engine, waiting up to ``timeout`` seconds.

        Returns ``None`` on timeout or after :meth:`close`.
        """
        if self._closed.is_set():
            return None
        try:
            if timeout is not None and timeout <= 0:
                return self._free.get_nowait()
            return self._free.get(timeout=timeout)
        except queue.Empty:
            return None

    def release(self, engine: ServingEngine) -> None:
        self._free.put(engine)

    @contextmanager
    def engine(
        self, timeout: Optional[float] = None
    ) -> Iterator[Optional[ServingEngine]]:
        engine = self.acquire(timeout)
        try:
            yield engine
        finally:
            if engine is not None:
                self.release(engine)

    def worker_stats(self) -> List[Dict[str, Any]]:
        """One roster row per pool engine (the health envelope's base)."""
        return [
            {"worker": e.worker_id, "requests_served": e.requests_served}
            for e in self.engines
        ]

    def close(self) -> None:
        """Stop handing out engines and release worker resources."""
        self._closed.set()
        for engine in self.engines:
            engine.close()


__all__ = [
    "BACKENDS",
    "EnginePool",
    "ServingEngine",
    "ServingWorkload",
    "WorkloadConfig",
]
