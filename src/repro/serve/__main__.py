"""Command-line entry point for the serving layer.

Examples::

    python -m repro.serve serve --port 8753 --workers 2
    python -m repro.serve loadgen --rate 6 --duration 30 --report-out run.json
    python -m repro.serve loadgen --trace-out spans.jsonl --slowlog-out slow.jsonl
    python -m repro.serve sweep --levels 1,2,4 --iterations 20
    python -m repro.serve slowlog slow.jsonl --top 5
    python -m repro.serve ping --port 8753 --timeout 5
    python -m repro.serve serve --windowed --alerts-out alerts.jsonl
    python -m repro.serve top --port 8753            # live dashboard
    python -m repro.serve top --once --json          # one machine-readable poll
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..bench.scales import DEFAULT_SCALE, SCALES
from ..cache import CacheConfig
from ..filters.intervals import DEFAULT_INTERVAL_LEVEL
from ..obs.runreport import write_run_report
from ..obs.slo import default_objectives
from .admission import AdmissionConfig
from .engine import BACKENDS, WorkloadConfig
from .loadgen import LoadgenConfig, LoadResult, run_open_loop, run_sweep
from .health import HealthConfig
from .server import run_server, send_envelope
from .service import QueryService
from .slowlog import SlowLogConfig, load_slowlog, summarize_slowlog
from .top import run_top
from .tracing import TracingConfig


def _add_service_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        default=DEFAULT_SCALE,
        choices=sorted(SCALES),
        help=f"workload scale preset (default: {DEFAULT_SCALE})",
    )
    parser.add_argument(
        "--engine",
        default="hardware",
        choices=("hardware", "software"),
        help="refinement engine kind (default: hardware)",
    )
    parser.add_argument(
        "--backend",
        default="batched",
        choices=BACKENDS,
        help="geometry-stage backend (default: batched)",
    )
    parser.add_argument(
        "--resolution",
        type=int,
        default=8,
        help="hardware window resolution (default: 8)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="engine-pool width: persistent engines (default: 2)",
    )
    parser.add_argument(
        "--shard-workers",
        type=int,
        default=2,
        help="process-pool width per engine for --backend sharded (default: 2)",
    )
    parser.add_argument(
        "--intervals",
        action="store_true",
        help="enable the raster-interval second filter on the selection "
        "and join pipelines (results are bit-identical either way)",
    )
    parser.add_argument(
        "--interval-level",
        type=int,
        default=DEFAULT_INTERVAL_LEVEL,
        help="interval-filter grid refinement: 2^level cells per side "
        f"(default: {DEFAULT_INTERVAL_LEVEL})",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help="enable the repro.cache memoization layers (default: off; "
        "note: cache hits depend on request-to-engine assignment, so "
        "reports are only counter-deterministic with caching off)",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=64,
        help="admission queue bound; arrivals beyond it are shed (default: 64)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="seconds a queued request may wait for an engine "
        "(default: wait forever)",
    )
    parser.add_argument(
        "--warm",
        action="store_true",
        help="prime every pool engine with one request before serving",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="per-request tracing: every request gets its own tracer and "
        "a trace_id echoed on the response (default: off)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        help="after the run, export retained request traces as span JSONL "
        "(implies --trace; analyze with 'python -m repro.obs report' or "
        "'python -m repro.obs timeline')",
    )
    parser.add_argument(
        "--slowlog-out",
        default=None,
        help="append slow-query forensics records (JSONL) here; "
        "summarize with 'python -m repro.serve slowlog'",
    )
    parser.add_argument(
        "--slow-threshold",
        type=float,
        default=0.25,
        help="seconds an ok request may take before it is slow-logged "
        "(shed/timeout/error are always logged; default: 0.25)",
    )
    parser.add_argument(
        "--windowed",
        action="store_true",
        help="windowed per-op telemetry + SLO burn-rate alerting: enables "
        "the rich 'health' envelope and 'python -m repro.serve top' "
        "(default: off; the hot path then pays one None check)",
    )
    parser.add_argument(
        "--window-width",
        type=float,
        default=10.0,
        help="seconds per windowed-telemetry bucket (default: 10)",
    )
    parser.add_argument(
        "--window-buckets",
        type=int,
        default=6,
        help="buckets in the windowed-telemetry ring (default: 6)",
    )
    parser.add_argument(
        "--slo-fast",
        type=float,
        default=60.0,
        help="fast burn-rate window span, seconds (default: 60)",
    )
    parser.add_argument(
        "--slo-slow",
        type=float,
        default=3600.0,
        help="slow burn-rate window span, seconds (default: 3600)",
    )
    parser.add_argument(
        "--slo-availability",
        type=float,
        default=0.99,
        help="availability SLO target fraction (default: 0.99)",
    )
    parser.add_argument(
        "--slo-latency",
        type=float,
        default=2.5,
        help="latency SLO 'fast enough' bound, seconds (default: 2.5)",
    )
    parser.add_argument(
        "--burn-threshold",
        type=float,
        default=2.0,
        help="burn rate both SLO windows must exceed to fire (default: 2.0)",
    )
    parser.add_argument(
        "--alerts-out",
        default=None,
        help="after the run, export SLO alert transitions as JSONL here "
        "(implies --windowed; schema repro.obs/alerts@1)",
    )


def _build_service(args: argparse.Namespace) -> QueryService:
    workload = WorkloadConfig(
        scale=args.scale,
        engine=args.engine,
        resolution=args.resolution,
        backend=args.backend,
        shard_workers=args.shard_workers,
        cache=CacheConfig() if args.cache else CacheConfig.disabled(),
        use_intervals=args.intervals,
        interval_level=args.interval_level,
    )
    admission = AdmissionConfig(max_queue=args.max_queue, timeout_s=args.timeout)
    tracing = TracingConfig(enabled=args.trace or args.trace_out is not None)
    slowlog = (
        SlowLogConfig(threshold_s=args.slow_threshold, path=args.slowlog_out)
        if args.slowlog_out is not None
        else None
    )
    health = None
    if args.windowed or args.alerts_out is not None:
        health = HealthConfig(
            window_width_s=args.window_width,
            window_buckets=args.window_buckets,
            slo_fast_s=args.slo_fast,
            slo_slow_s=args.slo_slow,
            burn_threshold=args.burn_threshold,
            objectives=default_objectives(
                availability_target=args.slo_availability,
                latency_threshold_s=args.slo_latency,
            ),
        )
    return QueryService(
        workload=workload,
        workers=args.workers,
        admission=admission,
        warm=args.warm,
        tracing=tracing,
        slowlog=slowlog,
        health=health,
    )


def _add_output_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--report-out",
        default=None,
        help="write a versioned RunReport JSON (gate with "
        "'python -m repro.obs compare')",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        help="write the service's metrics snapshot as JSON",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="also append the formatted result table to this file",
    )


def _emit(load: LoadResult, args: argparse.Namespace) -> None:
    text = load.result.format()
    counts = load.status_counts
    text += (
        f"\nstatuses: ok={counts['ok']} shed={counts['shed']}"
        f" timeout={counts['timeout']} error={counts['error']}"
        f" (wall {load.wall_s:.1f} s)\n"
    )
    print(text)
    if args.out:
        with open(args.out, "a", encoding="utf-8") as f:
            f.write(text + "\n")
    if args.report_out:
        write_run_report(args.report_out, load.run_report(scale=args.scale))
        print(f"run report written to {args.report_out}")
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as f:
            json.dump(load.metrics_snapshot, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"metrics snapshot written to {args.metrics_out}")


def _emit_forensics(service: QueryService, args: argparse.Namespace) -> None:
    """Export traces / report slowlog volume after a load run."""
    if getattr(args, "trace_out", None):
        count = service.export_traces(args.trace_out)
        print(
            f"{count} span(s) from {len(service.traces)} request trace(s)"
            f" written to {args.trace_out}"
        )
    if getattr(args, "slowlog_out", None) and service.slowlog is not None:
        print(
            f"{service.slowlog.logged} slow-query record(s) appended to"
            f" {args.slowlog_out}"
        )
    if getattr(args, "alerts_out", None) and service.health_monitor is not None:
        count = service.export_alerts(args.alerts_out)
        print(f"{count} alert transition(s) written to {args.alerts_out}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Concurrent query service over the spatial engine.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_serve = sub.add_parser("serve", help="run the TCP JSONL front-end")
    _add_service_args(p_serve)
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8753)

    p_load = sub.add_parser(
        "loadgen", help="open-loop fixed-arrival-rate load run (in-process)"
    )
    _add_service_args(p_load)
    _add_output_args(p_load)
    p_load.add_argument(
        "--rate", type=float, default=8.0, help="arrivals per second"
    )
    p_load.add_argument(
        "--duration", type=float, default=10.0, help="schedule length, seconds"
    )
    p_load.add_argument(
        "--seed", type=int, default=2003, help="schedule RNG seed"
    )

    p_sweep = sub.add_parser(
        "sweep", help="closed-loop saturation sweep over concurrency levels"
    )
    _add_service_args(p_sweep)
    _add_output_args(p_sweep)
    p_sweep.add_argument(
        "--levels",
        default="1,2,4",
        help="comma-separated concurrency levels (default: 1,2,4)",
    )
    p_sweep.add_argument(
        "--iterations",
        type=int,
        default=20,
        help="requests per client per level (default: 20)",
    )
    p_sweep.add_argument("--seed", type=int, default=2003)

    p_ping = sub.add_parser("ping", help="liveness-check a running server")
    p_ping.add_argument("--host", default="127.0.0.1")
    p_ping.add_argument("--port", type=int, default=8753)
    p_ping.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="socket timeout in seconds; 0 = wait forever (default: 30)",
    )

    p_top = sub.add_parser(
        "top", help="live dashboard over a running server's health + metrics"
    )
    p_top.add_argument("--host", default="127.0.0.1")
    p_top.add_argument("--port", type=int, default=8753)
    p_top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between polls in the live loop (default: 2)",
    )
    p_top.add_argument(
        "--once",
        action="store_true",
        help="render a single frame and exit (0 = ready, 1 = degraded)",
    )
    p_top.add_argument(
        "--json",
        action="store_true",
        help="with --once: print the raw health+metrics document instead",
    )
    p_top.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="socket timeout in seconds; 0 = wait forever (default: 30)",
    )

    p_slow = sub.add_parser(
        "slowlog", help="summarize a slow-query forensics log (JSONL)"
    )
    p_slow.add_argument("log", help="file written by --slowlog-out")
    p_slow.add_argument(
        "--top", type=int, default=5, help="slowest requests to show (default: 5)"
    )

    args = parser.parse_args(argv)

    if args.command == "slowlog":
        try:
            records = load_slowlog(args.log)
            print(summarize_slowlog(records, top=args.top))
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return 0

    if args.command == "ping":
        timeout = None if args.timeout == 0 else args.timeout
        reply = send_envelope(args.host, args.port, {"kind": "ping"}, timeout=timeout)
        print(json.dumps(reply))
        return 0 if reply.get("kind") == "pong" else 1

    if args.command == "top":
        timeout = None if args.timeout == 0 else args.timeout
        return run_top(
            args.host,
            args.port,
            interval_s=args.interval,
            once=args.once,
            as_json=args.json,
            timeout=timeout,
        )

    if args.command == "serve":
        service = _build_service(args)
        try:
            run_server(service, host=args.host, port=args.port)
        finally:
            service.close()
            _emit_forensics(service, args)
        return 0

    if args.command == "loadgen":
        service = _build_service(args)
        try:
            load = run_open_loop(
                service,
                LoadgenConfig(
                    rate=args.rate, duration_s=args.duration, seed=args.seed
                ),
            )
        finally:
            service.close()
        _emit(load, args)
        _emit_forensics(service, args)
        return 0

    if args.command == "sweep":
        try:
            levels = [int(x) for x in args.levels.split(",") if x.strip()]
        except ValueError:
            print(f"bad --levels {args.levels!r}", file=sys.stderr)
            return 2
        service = _build_service(args)
        try:
            load = run_sweep(
                service, levels, iterations=args.iterations, seed=args.seed
            )
        finally:
            service.close()
        _emit(load, args)
        _emit_forensics(service, args)
        return 0

    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
