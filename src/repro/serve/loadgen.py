"""Load generators: open-loop arrival processes and closed-loop sweeps.

Two complementary shapes, the standard pair for serving evaluation:

* **open loop** (:func:`run_open_loop`) - requests arrive on a fixed
  schedule (``rate`` per second for ``duration_s``) regardless of how the
  server is doing, the way real traffic does.  The schedule is built
  **before** the run from a seeded RNG, so two runs with the same config
  issue the byte-identical request sequence - which is what lets CI gate
  the resulting RunReport's counters exactly;
* **closed loop** (:func:`run_closed_loop` / :func:`run_sweep`) - a fixed
  set of client threads each keep exactly one request outstanding.
  Sweeping the concurrency level traces the throughput curve to
  saturation (it plateaus at the engine-pool width).

Both runners enforce the accounting invariant the service promises:
**every scheduled request yields exactly one terminal response** -
``ok + shed + timeout + error == scheduled``.  A violation raises
:class:`LoadAccountingError` instead of being quietly summarized; "zero
dropped-then-unreported requests" is an acceptance criterion, not a
best-effort stat.

Results are packaged the same way the benchmark drivers package theirs -
an :class:`~repro.bench.result.ExperimentResult` plus the service's
metrics snapshot, folded into a versioned RunReport - so
``python -m repro.obs compare`` gates serving-latency regressions with
the machinery that already gates the batch benchmarks.
"""

from __future__ import annotations

import math
import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..bench.result import ExperimentResult
from ..obs.runreport import (
    build_run_report,
    environment_fingerprint,
    experiment_entry,
)
from .schema import SERVE_OPS, QueryRequest, QueryResponse
from .service import QueryService

#: Default op mix: selections dominate (they are the cheap, frequent
#: query class), joins are occasional, within-distance is rare and heavy.
DEFAULT_MIX: Mapping[str, float] = {
    "selection": 0.80,
    "join": 0.15,
    "within_distance": 0.05,
}

#: Distance multipliers (of the workload's base distance) a generated
#: within-distance request draws from.
DISTANCE_FACTORS: Tuple[float, ...] = (0.5, 1.0, 2.0)


class LoadAccountingError(RuntimeError):
    """A scheduled request did not come back as exactly one response."""


@dataclass(frozen=True)
class LoadgenConfig:
    """One open-loop run: a fixed-rate arrival schedule."""

    #: Arrivals per second (fixed; the server's speed never changes it).
    rate: float = 8.0
    #: Schedule length in seconds; ``round(rate * duration_s)`` requests.
    duration_s: float = 10.0
    #: RNG seed for the op/parameter draw (same seed = same schedule).
    seed: int = 2003
    #: Op mix weights (normalized; ops with weight 0 never appear).
    mix: Mapping[str, float] = field(default_factory=lambda: dict(DEFAULT_MIX))

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {self.duration_s}")
        unknown = set(self.mix) - set(SERVE_OPS)
        if unknown:
            raise ValueError(f"unknown op(s) in mix: {sorted(unknown)}")
        if not any(w > 0 for w in self.mix.values()):
            raise ValueError("mix must give positive weight to at least one op")

    @property
    def request_count(self) -> int:
        return max(1, round(self.rate * self.duration_s))


@dataclass(frozen=True)
class ScheduledRequest:
    """One arrival: when (relative to run start) and what."""

    offset_s: float
    request: QueryRequest


def build_schedule(
    workload: Any, config: LoadgenConfig
) -> List[ScheduledRequest]:
    """The full arrival schedule, materialized before the run starts.

    ``workload`` is the service's :class:`~repro.serve.engine.ServingWorkload`
    (duck-typed on ``queries`` and ``base_distance``); request parameters
    are drawn from it so every generated request is valid against the
    resident data.
    """
    rng = random.Random(config.seed)
    ops = [op for op in SERVE_OPS if config.mix.get(op, 0.0) > 0]
    weights = [config.mix[op] for op in ops]
    n = config.request_count
    schedule: List[ScheduledRequest] = []
    for i in range(n):
        op = rng.choices(ops, weights=weights, k=1)[0]
        query_index = None
        distance = None
        if op == "selection":
            query_index = rng.randrange(len(workload.queries))
        elif op == "within_distance":
            distance = workload.base_distance * rng.choice(DISTANCE_FACTORS)
        schedule.append(
            ScheduledRequest(
                offset_s=i / config.rate,
                request=QueryRequest(
                    op=op,
                    query_index=query_index,
                    distance=distance,
                    request_id=f"r{i:06d}",
                ),
            )
        )
    return schedule


# -- aggregation -------------------------------------------------------------


def exact_quantile(sorted_values: Sequence[float], q: float) -> float:
    """Exact q-quantile of an already-sorted sample (0.0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


@dataclass
class OpStats:
    """Per-op outcome counts and exact latency percentiles."""

    op: str
    scheduled: int = 0
    ok: int = 0
    shed: int = 0
    timeout: int = 0
    error: int = 0
    latencies_s: List[float] = field(default_factory=list)

    def row(self) -> Tuple[Any, ...]:
        lat = sorted(self.latencies_s)
        return (
            self.op,
            self.scheduled,
            self.ok,
            self.shed,
            self.timeout,
            self.error,
            exact_quantile(lat, 0.50) * 1e3,
            exact_quantile(lat, 0.95) * 1e3,
            exact_quantile(lat, 0.99) * 1e3,
            (sum(lat) / len(lat) * 1e3) if lat else 0.0,
        )


OP_COLUMNS = (
    "op",
    "scheduled",
    "ok",
    "shed",
    "timeout",
    "error",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "mean_ms",
)


def _account(
    scheduled_ops: Sequence[str], responses: Sequence[QueryResponse]
) -> Dict[str, OpStats]:
    """Fold responses into per-op stats; enforce the accounting invariant."""
    if len(responses) != len(scheduled_ops):
        raise LoadAccountingError(
            f"{len(scheduled_ops)} request(s) scheduled but "
            f"{len(responses)} response(s) returned"
        )
    stats: Dict[str, OpStats] = {}
    for op in scheduled_ops:
        stats.setdefault(op, OpStats(op)).scheduled += 1
    for response in responses:
        entry = stats.get(response.op)
        if entry is None:
            raise LoadAccountingError(
                f"response for op {response.op!r} was never scheduled"
            )
        if response.status == "ok":
            entry.ok += 1
            entry.latencies_s.append(response.total_s)
        elif response.status == "shed":
            entry.shed += 1
        elif response.status == "timeout":
            entry.timeout += 1
        else:
            entry.error += 1
    for entry in stats.values():
        reported = entry.ok + entry.shed + entry.timeout + entry.error
        if reported != entry.scheduled:
            raise LoadAccountingError(
                f"op {entry.op!r}: {entry.scheduled} scheduled but only "
                f"{reported} reported (ok={entry.ok} shed={entry.shed} "
                f"timeout={entry.timeout} error={entry.error})"
            )
    return stats


@dataclass
class LoadResult:
    """Everything one load run produced."""

    result: ExperimentResult
    responses: List[QueryResponse]
    stats: Dict[str, OpStats]
    wall_s: float
    metrics_snapshot: Dict[str, Any]

    @property
    def status_counts(self) -> Dict[str, int]:
        out = {"ok": 0, "shed": 0, "timeout": 0, "error": 0}
        for entry in self.stats.values():
            out["ok"] += entry.ok
            out["shed"] += entry.shed
            out["timeout"] += entry.timeout
            out["error"] += entry.error
        return out

    def run_report(self, scale: Optional[str] = None) -> Dict[str, Any]:
        """The versioned RunReport artifact for ``repro.obs compare``."""
        entry = experiment_entry(self.result, self.metrics_snapshot, self.wall_s)
        return build_run_report(
            [entry],
            self.metrics_snapshot,
            scale=scale,
            environment=environment_fingerprint(scale=scale),
        )


# -- open loop ---------------------------------------------------------------


def run_open_loop(
    service: QueryService,
    config: Optional[LoadgenConfig] = None,
    max_client_threads: int = 256,
) -> LoadResult:
    """Drive the service with a fixed-arrival-rate schedule.

    The pacing loop sleeps until each arrival's scheduled offset and
    dispatches it to a client thread; a slow server therefore accumulates
    in-flight requests (and eventually sheds) instead of slowing the
    arrival process down - the defining property of open-loop load.
    """
    config = config if config is not None else LoadgenConfig()
    schedule = build_schedule(service.workload, config)
    workers = max(1, min(len(schedule), service.capacity, max_client_threads))
    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=workers) as pool:
        futures = []
        for item in schedule:
            delay = (start + item.offset_s) - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            futures.append(pool.submit(service.submit, item.request))
        responses = [f.result() for f in futures]
    wall_s = time.perf_counter() - start

    stats = _account([item.request.op for item in schedule], responses)
    rows = [stats[op].row() for op in sorted(stats)]
    attained = len(schedule) / wall_s if wall_s > 0 else 0.0
    result = ExperimentResult(
        experiment_id="serve-open-loop",
        title="Open-loop serving: fixed-rate arrivals against repro.serve",
        params={
            "scale": service.workload_config.scale,
            "engine": service.workload_config.engine,
            "backend": service.workload_config.backend,
            "workers": service.pool.size,
            "max_queue": service.admission_config.max_queue,
            "timeout_s": service.admission_config.timeout_s,
            "rate_rps": config.rate,
            "duration_s": config.duration_s,
            "seed": config.seed,
            "requests": len(schedule),
            "attained_rps": attained,
        },
        columns=OP_COLUMNS,
        rows=rows,
        paper_expectation=(
            "the hardware filter keeps per-query latency low enough that a "
            "small engine pool sustains the offered rate with no sheds"
        ),
    )
    return LoadResult(
        result=result,
        responses=responses,
        stats=stats,
        wall_s=wall_s,
        metrics_snapshot=service.metrics_snapshot(),
    )


# -- closed loop -------------------------------------------------------------


def run_closed_loop(
    service: QueryService,
    concurrency: int,
    iterations: int,
    seed: int = 2003,
    mix: Optional[Mapping[str, float]] = None,
) -> Tuple[List[QueryResponse], float]:
    """``concurrency`` clients, each keeping one request outstanding.

    Every client issues ``iterations`` requests back-to-back from its own
    seeded stream.  Returns (responses, wall seconds).
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    config = LoadgenConfig(
        rate=float(iterations),
        duration_s=1.0,
        seed=seed,
        mix=dict(mix) if mix is not None else dict(DEFAULT_MIX),
    )
    all_responses: List[List[QueryResponse]] = [[] for _ in range(concurrency)]
    all_ops: List[List[str]] = [[] for _ in range(concurrency)]

    def client(idx: int) -> None:
        # Offsets are ignored: a closed-loop client never waits to send.
        schedule = build_schedule(
            service.workload,
            LoadgenConfig(
                rate=config.rate,
                duration_s=config.duration_s,
                seed=config.seed + idx,
                mix=config.mix,
            ),
        )
        for item in schedule:
            all_ops[idx].append(item.request.op)
            all_responses[idx].append(service.submit(item.request))

    threads = [
        threading.Thread(target=client, args=(i,), name=f"loadgen-client-{i}")
        for i in range(concurrency)
    ]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall_s = time.perf_counter() - start

    ops = [op for per_client in all_ops for op in per_client]
    responses = [r for per_client in all_responses for r in per_client]
    _account(ops, responses)  # raises on any unreported request
    return responses, wall_s


def run_sweep(
    service: QueryService,
    levels: Sequence[int],
    iterations: int = 20,
    seed: int = 2003,
    mix: Optional[Mapping[str, float]] = None,
) -> LoadResult:
    """Closed-loop saturation sweep over concurrency levels.

    Throughput rises with concurrency until the engine pool is saturated
    (every engine busy), then plateaus - the knee locates the service's
    capacity at this workload.
    """
    if not levels:
        raise ValueError("levels must name at least one concurrency level")
    rows = []
    all_ops: List[str] = []
    all_responses: List[QueryResponse] = []
    sweep_start = time.perf_counter()
    for level in levels:
        responses, wall_s = run_closed_loop(
            service, level, iterations, seed=seed, mix=mix
        )
        lat = sorted(r.total_s for r in responses if r.ok)
        rows.append(
            (
                level,
                len(responses),
                sum(1 for r in responses if r.ok),
                len(responses) / wall_s if wall_s > 0 else 0.0,
                exact_quantile(lat, 0.50) * 1e3,
                exact_quantile(lat, 0.95) * 1e3,
                exact_quantile(lat, 0.99) * 1e3,
                wall_s,
            )
        )
        all_responses.extend(responses)
        all_ops.extend(r.op for r in responses)
    wall_s = time.perf_counter() - sweep_start

    stats = _account(all_ops, all_responses)
    result = ExperimentResult(
        experiment_id="serve-closed-loop-sweep",
        title="Closed-loop saturation sweep: throughput vs. concurrency",
        params={
            "scale": service.workload_config.scale,
            "engine": service.workload_config.engine,
            "backend": service.workload_config.backend,
            "workers": service.pool.size,
            "levels": list(levels),
            "iterations_per_client": iterations,
            "seed": seed,
        },
        columns=(
            "concurrency",
            "requests",
            "ok",
            "throughput_rps",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "wall_s",
        ),
        rows=rows,
        paper_expectation=(
            "throughput scales with offered concurrency until the engine "
            "pool saturates, then plateaus at pool-width utilization"
        ),
    )
    return LoadResult(
        result=result,
        responses=all_responses,
        stats=stats,
        wall_s=wall_s,
        metrics_snapshot=service.metrics_snapshot(),
    )


__all__ = [
    "DEFAULT_MIX",
    "DISTANCE_FACTORS",
    "LoadAccountingError",
    "LoadResult",
    "LoadgenConfig",
    "OpStats",
    "OP_COLUMNS",
    "ScheduledRequest",
    "build_schedule",
    "exact_quantile",
    "run_closed_loop",
    "run_open_loop",
    "run_sweep",
]
