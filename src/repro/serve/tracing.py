"""Per-request tracing for the serving layer: config and the trace store.

:class:`~repro.exec.trace.Tracer` is single-control-flow by design - one
tracer belongs to one request.  Installing one process-globally under the
serve thread pool would interleave concurrent requests' spans through one
shared parent stack (request B's stage spans parenting under request A's
open span).  The serving layer therefore gives **every request its own
tracer**, scoped with :func:`~repro.exec.trace.use_tracer` around the
whole submit path, and collects the finished span trees here:

* :class:`TracingConfig` - whether tracing is on and how many finished
  request traces to retain;
* :class:`TraceStore` - a thread-safe bounded ring of finished per-request
  span lists.  Bounded because a serving process is long-lived: retaining
  every span of millions of requests is a slow OOM.  Evictions are
  counted, never silent.

The store's :meth:`TraceStore.export` writes one flat span JSONL (every
span already stamped with its request's ``trace_id``), the format both
``python -m repro.obs report`` and ``python -m repro.obs timeline``
consume.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass
from typing import IO, Any, Deque, Dict, List, Union

from ..exec.trace import Span


@dataclass(frozen=True)
class TracingConfig:
    """Tracing posture of one service, resolved at construction."""

    #: Trace every request (one tracer per request, trace_id echoed on the
    #: response).  Off by default: the no-tracer fast path stays the
    #: zero-overhead default the batch layers rely on.
    enabled: bool = False
    #: Finished request traces retained in memory (oldest evicted first).
    max_requests: int = 10_000

    def __post_init__(self) -> None:
        if self.max_requests < 1:
            raise ValueError(
                f"max_requests must be >= 1, got {self.max_requests}"
            )

    @classmethod
    def disabled(cls) -> "TracingConfig":
        return cls(enabled=False)


class TraceStore:
    """Thread-safe bounded ring of finished per-request span trees."""

    def __init__(self, max_requests: int = 10_000) -> None:
        if max_requests < 1:
            raise ValueError(f"max_requests must be >= 1, got {max_requests}")
        self.max_requests = max_requests
        self._traces: Deque[List[Span]] = deque(maxlen=max_requests)
        self._lock = threading.Lock()
        self.added = 0
        self.evicted = 0

    def add(self, spans: List[Span]) -> None:
        """Retain one finished request's spans (oldest trace evicted)."""
        if not spans:
            return
        with self._lock:
            if len(self._traces) == self.max_requests:
                self.evicted += 1
            self._traces.append(list(spans))
            self.added += 1

    def traces(self) -> List[List[Span]]:
        """Snapshot of the retained per-request span lists (oldest first)."""
        with self._lock:
            return [list(t) for t in self._traces]

    def spans(self) -> List[Span]:
        """All retained spans, flattened in request-completion order."""
        return [span for trace in self.traces() for span in trace]

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def export(self, target: Union[str, IO[str]]) -> int:
        """Write every retained span as JSON lines; returns the span count.

        Every request's tracer numbered its spans from 1, so a flat export
        namespaces ids per trace (``"<trace_id>:<span_id>"``): parent
        links still resolve within each request, but two requests' spans
        can never alias each other in downstream tree rebuilds
        (:mod:`repro.obs.report`, :mod:`repro.obs.timeline`).
        """
        count = 0

        def write_all(f: IO[str]) -> None:
            nonlocal count
            for idx, trace in enumerate(self.traces()):
                for span in trace:
                    doc = span.to_dict()
                    prefix = doc.get("trace_id") or f"t{idx}"
                    doc["span_id"] = f"{prefix}:{doc['span_id']}"
                    if doc.get("parent_id") is not None:
                        doc["parent_id"] = f"{prefix}:{doc['parent_id']}"
                    f.write(json.dumps(doc, sort_keys=True) + "\n")
                    count += 1

        if isinstance(target, str):
            with open(target, "w", encoding="utf-8") as f:
                write_all(f)
        else:
            write_all(target)
        return count

    def describe(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "retained": len(self._traces),
                "added": self.added,
                "evicted": self.evicted,
                "max_requests": self.max_requests,
            }


__all__ = ["TraceStore", "TracingConfig"]
