"""Typed request/response schema of the query service.

The wire format is deliberately tiny and versioned: one JSON object per
request, one per response, schema-tagged so a client and a server that
disagree fail loudly instead of mis-parsing each other.  Three query kinds
map onto the paper's three query classes (the pipelines of
:mod:`repro.query`):

* ``selection`` - intersection selection of one query polygon (addressed
  by index into the server's resident query set, the STATES50 boundaries)
  against the resident data layer;
* ``join`` - the resident intersection join (dataset |><| dataset);
* ``within_distance`` - the resident within-distance join at a
  client-chosen distance ``D``.

Responses carry a ``status`` that is always explicit: ``ok`` (results
attached), ``shed`` (admission control refused the request - the queue was
full), ``timeout`` (the request waited longer than the admission deadline
and was never executed), or ``error`` (validation or execution failure,
with the message).  A loaded server never drops a request silently; that
property is what the sustained-load gate in CI asserts.

Result payloads are **canonical**: selection results are sorted dataset
indexes, join results are sorted ``[i, j]`` index lists - exactly what the
underlying pipelines return, so a response is bit-comparable to a direct
engine call (the serving determinism property test relies on this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

#: Version tags of the wire schemas (bump on incompatible change).
REQUEST_SCHEMA = "repro.serve/request@1"
RESPONSE_SCHEMA = "repro.serve/response@1"
#: The ``health`` envelope body (built by :mod:`repro.serve.health`):
#: ready/degraded verdict, queue depth, inflight, per-op windowed
#: latency summaries, SLO burn rates, firing alerts, worker heartbeats.
HEALTH_SCHEMA = "repro.serve/health@1"

#: The query kinds the service executes.
SERVE_OPS = ("selection", "join", "within_distance")

#: Terminal request outcomes.
STATUSES = ("ok", "shed", "timeout", "error")


@dataclass(frozen=True)
class QueryRequest:
    """One client query against the resident serving workload."""

    op: str
    #: Selection only: index into the server's resident query set.
    query_index: Optional[int] = None
    #: Within-distance only: the join distance ``D`` (>= 0).
    distance: Optional[float] = None
    #: Optional client-chosen correlation id, echoed on the response.
    request_id: Optional[str] = None
    #: Optional client-supplied distributed-tracing id.  When the service
    #: runs with tracing enabled it adopts this id (or mints one when
    #: absent) and echoes it on the response, so a client can join its own
    #: spans with the server-side trace.
    trace_id: Optional[str] = None

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if self.op not in SERVE_OPS:
            raise ValueError(
                f"unknown op {self.op!r}; expected one of {SERVE_OPS}"
            )
        if self.op == "selection":
            if self.query_index is None or self.query_index < 0:
                raise ValueError(
                    "selection requires query_index >= 0 "
                    f"(got {self.query_index!r})"
                )
        elif self.query_index is not None:
            raise ValueError(f"op {self.op!r} does not take query_index")
        if self.op == "within_distance":
            if self.distance is None or not self.distance >= 0.0:
                raise ValueError(
                    "within_distance requires distance >= 0 "
                    f"(got {self.distance!r})"
                )
        elif self.distance is not None:
            raise ValueError(f"op {self.op!r} does not take distance")
        if self.trace_id is not None and not isinstance(self.trace_id, str):
            raise ValueError(
                f"trace_id must be a string, got {self.trace_id!r}"
            )

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"schema": REQUEST_SCHEMA, "op": self.op}
        if self.query_index is not None:
            out["query_index"] = self.query_index
        if self.distance is not None:
            out["distance"] = self.distance
        if self.request_id is not None:
            out["request_id"] = self.request_id
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "QueryRequest":
        schema = data.get("schema", REQUEST_SCHEMA)
        if schema != REQUEST_SCHEMA:
            raise ValueError(
                f"unsupported request schema {schema!r};"
                f" expected {REQUEST_SCHEMA!r}"
            )
        known = {"schema", "op", "query_index", "distance", "request_id", "trace_id"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown request field(s) {sorted(unknown)}")
        if "op" not in data:
            raise ValueError("request is missing 'op'")
        return cls(
            op=data["op"],
            query_index=data.get("query_index"),
            distance=data.get("distance"),
            request_id=data.get("request_id"),
            trace_id=data.get("trace_id"),
        )


@dataclass
class QueryResponse:
    """The service's answer to one :class:`QueryRequest`."""

    status: str
    op: str
    #: Canonical result payload (``None`` unless ``status == "ok"``):
    #: sorted ids for selections, sorted ``[i, j]`` lists for joins.
    results: Optional[List[Any]] = None
    request_id: Optional[str] = None
    #: Which pool engine served the request (``None`` if never executed).
    worker: Optional[int] = None
    #: Seconds spent waiting for an engine (admission queue).
    wait_s: float = 0.0
    #: Seconds spent executing the query pipeline.
    exec_s: float = 0.0
    #: Total seconds in the system (wait + execute + bookkeeping).
    total_s: float = 0.0
    error: Optional[str] = None
    attributes: Dict[str, Any] = field(default_factory=dict)
    #: Server-side trace id of this request (set whenever the service ran
    #: with tracing or slow-query forensics enabled): the key joining the
    #: response to its span tree, timeline lanes, and slowlog record.
    trace_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.status not in STATUSES:
            raise ValueError(
                f"unknown status {self.status!r}; expected one of {STATUSES}"
            )

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def result_count(self) -> Optional[int]:
        return len(self.results) if self.results is not None else None

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "schema": RESPONSE_SCHEMA,
            "status": self.status,
            "op": self.op,
            "wait_s": self.wait_s,
            "exec_s": self.exec_s,
            "total_s": self.total_s,
        }
        if self.results is not None:
            out["results"] = canonical_results(self.results)
            out["result_count"] = len(self.results)
        if self.request_id is not None:
            out["request_id"] = self.request_id
        if self.worker is not None:
            out["worker"] = self.worker
        if self.error is not None:
            out["error"] = self.error
        if self.attributes:
            out["attributes"] = self.attributes
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "QueryResponse":
        schema = data.get("schema", RESPONSE_SCHEMA)
        if schema != RESPONSE_SCHEMA:
            raise ValueError(
                f"unsupported response schema {schema!r};"
                f" expected {RESPONSE_SCHEMA!r}"
            )
        return cls(
            status=data["status"],
            op=data["op"],
            results=data.get("results"),
            request_id=data.get("request_id"),
            worker=data.get("worker"),
            wait_s=data.get("wait_s", 0.0),
            exec_s=data.get("exec_s", 0.0),
            total_s=data.get("total_s", 0.0),
            error=data.get("error"),
            attributes=dict(data.get("attributes", {})),
            trace_id=data.get("trace_id"),
        )


def canonical_results(results: List[Any]) -> List[Any]:
    """JSON-canonical form of a result payload.

    Join pipelines return ``(i, j)`` tuples; JSON has no tuples, so the
    canonical wire form is nested lists.  Selections (plain ints) pass
    through.  Comparing ``canonical_results(direct_run)`` against a
    response's ``results`` is the serving bit-identity check.
    """
    return [list(r) if isinstance(r, tuple) else r for r in results]


__all__ = [
    "HEALTH_SCHEMA",
    "QueryRequest",
    "QueryResponse",
    "REQUEST_SCHEMA",
    "RESPONSE_SCHEMA",
    "SERVE_OPS",
    "STATUSES",
    "canonical_results",
]
