"""Admission control: bounded queueing with explicit shed and timeout.

An open-loop arrival process does not slow down when the server falls
behind - unbounded queues just convert overload into unbounded latency and
memory.  The controller enforces two limits, both resolved **before** any
expensive work happens:

* **shed** - at most ``max_queue`` requests may be waiting for an engine;
  request ``max_queue + 1`` is refused immediately with a ``shed``
  response (the client sees backpressure instead of a stall);
* **timeout** - a request that cannot check out an engine within
  ``timeout_s`` of arriving gets a ``timeout`` response and never
  executes.  Execution itself is never preempted: once an engine is
  checked out the request runs to completion (partial pipeline state is
  worse than a late answer).

Every admitted or refused request is accounted somewhere - shed + timeout
+ ok + error always equals arrivals.  The load generator asserts exactly
that ("zero dropped-then-unreported requests").
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

from ..obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class AdmissionConfig:
    """Queue bound and deadline of one service."""

    #: Requests allowed to wait for an engine (beyond the ones executing).
    max_queue: int = 64
    #: Seconds a request may wait for an engine before timing out
    #: (``None`` = wait forever; fine for closed-loop clients).
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {self.max_queue}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(
                f"timeout_s must be positive (or None), got {self.timeout_s}"
            )


class AdmissionController:
    """Thread-safe arrival gate in front of the engine pool.

    When a registry is attached, the ``serve_queue_depth`` and
    ``serve_inflight`` gauges are updated **inside** the locked state
    transitions: gauge writes then land in the same order as the state
    changes, so the final published values after a drained run are
    exactly 0 - a property the CI regression baseline relies on.
    """

    def __init__(
        self,
        config: AdmissionConfig,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config
        self._lock = threading.Lock()
        self._queued = 0
        self._inflight = 0
        self._depth_gauge = (
            registry.gauge("serve_queue_depth") if registry is not None else None
        )
        self._inflight_gauge = (
            registry.gauge("serve_inflight") if registry is not None else None
        )

    def _publish(self) -> None:
        if self._depth_gauge is not None:
            self._depth_gauge.set(self._queued)
        if self._inflight_gauge is not None:
            self._inflight_gauge.set(self._inflight)

    # -- gates -----------------------------------------------------------

    def try_admit(self) -> bool:
        """Admit one arrival into the wait queue, or refuse (shed)."""
        with self._lock:
            if self._queued >= self.config.max_queue:
                return False
            self._queued += 1
            self._publish()
            return True

    def start_execution(self) -> None:
        """An admitted request checked out an engine: queued -> inflight."""
        with self._lock:
            self._queued -= 1
            self._inflight += 1
            self._publish()

    def finish_execution(self) -> None:
        with self._lock:
            self._inflight -= 1
            self._publish()

    def abandon_queue(self) -> None:
        """An admitted request left without executing (timeout/error)."""
        with self._lock:
            self._queued -= 1
            self._publish()

    # -- introspection ---------------------------------------------------

    @property
    def queue_depth(self) -> int:
        return self._queued

    @property
    def inflight(self) -> int:
        return self._inflight


__all__ = ["AdmissionConfig", "AdmissionController"]
