"""Service health: windowed telemetry, SLO burn rates, and the verdict.

The cumulative registry answers "what has this process done since it
started"; this module answers the operator's question - "is the service
healthy *right now*" - and packages the answer as the versioned
``health`` envelope (:data:`~repro.serve.schema.HEALTH_SCHEMA`) the TCP
front-end serves and ``python -m repro.serve top`` renders:

* :class:`HealthConfig` - the opt-in: windowed per-op latency/outcome
  families (:mod:`repro.obs.window`), the SLO objectives and burn-rate
  windows (:mod:`repro.obs.slo`), and the **injected clock** everything
  runs off.  The default service carries no monitor at all - the submit
  hot path pays one ``None`` check, and the registry snapshot (the
  CI-gated serving baseline) is bit-identical to a pre-health build;
* :class:`ServiceHealth` - the per-service monitor
  :meth:`~repro.serve.service.QueryService.submit` reports every outcome
  into: windowed ``serve_window_request_duration_s{op}`` /
  ``serve_window_requests{op,status}`` families alongside the cumulative
  ones, the :class:`~repro.obs.slo.SLOTracker`, per-worker heartbeats,
  and one deterministic cumulative counter
  (``serve_windowed_observations{op,status}``) published into the
  service registry so the CI baseline can assert the windowed layer
  observed every request;
* :func:`build_health` - the envelope itself: a ``ready``/``degraded``
  verdict (degraded while any SLO alert fires or admission is at the
  shed point), queue depth / inflight, per-op windowed p50/p95/p99 and
  rates, burn rates, firing alerts, and engine-pool worker heartbeats.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..obs.metrics import MetricsRegistry
from ..obs.slo import (
    AlertLog,
    SLOConfig,
    SLObjective,
    SLOTracker,
    default_objectives,
)
from ..obs.window import WindowConfig, WindowedRegistry
from .schema import HEALTH_SCHEMA

#: Health verdicts, from best to worst.
VERDICTS = ("ready", "degraded")


@dataclass(frozen=True)
class HealthConfig:
    """Windowed-telemetry posture of one service (presence = enabled)."""

    #: Rolling window of the per-op latency/outcome families.
    window_width_s: float = 10.0
    window_buckets: int = 6
    #: Burn-rate windows (production shape: 1 m fast / 1 h slow).
    slo_fast_s: float = 60.0
    slo_slow_s: float = 3600.0
    burn_threshold: float = 2.0
    #: Fast-window events required before an objective may fire.
    min_events: int = 1
    #: The objectives to track (default: stock availability + latency).
    objectives: Tuple[SLObjective, ...] = field(
        default_factory=default_objectives
    )
    #: Alert transitions retained in the bounded log.
    max_alert_events: int = 10_000
    #: The seconds source every window reads (injectable for tests).
    clock: Callable[[], float] = field(default=time.monotonic, repr=False)

    def __post_init__(self) -> None:
        if self.window_width_s <= 0:
            raise ValueError(
                f"window_width_s must be positive, got {self.window_width_s}"
            )
        if self.window_buckets < 1:
            raise ValueError(
                f"window_buckets must be >= 1, got {self.window_buckets}"
            )
        if not self.objectives:
            raise ValueError("health tracking needs at least one objective")


class ServiceHealth:
    """The per-service monitor every submit outcome reports into."""

    def __init__(
        self,
        config: HealthConfig,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config
        self.registry = registry
        self.windows = WindowedRegistry(
            WindowConfig(
                width_s=config.window_width_s,
                buckets=config.window_buckets,
                clock=config.clock,
            )
        )
        self.slo = SLOTracker(
            config.objectives,
            SLOConfig.scaled(
                config.slo_fast_s,
                config.slo_slow_s,
                clock=config.clock,
                burn_threshold=config.burn_threshold,
                min_events=config.min_events,
            ),
            alert_log=AlertLog(config.max_alert_events),
        )
        #: worker id -> clock() of the last outcome that worker served.
        self._heartbeats: Dict[int, float] = {}

    # -- the submit-path hook ---------------------------------------------

    def record(
        self,
        op: str,
        status: str,
        total_s: float,
        worker: Optional[int] = None,
    ) -> None:
        """Account one finished request (windows + SLO + heartbeat)."""
        self.windows.counter("serve_window_requests", op=op, status=status).inc()
        if status == "ok":
            self.windows.histogram(
                "serve_window_request_duration_s", op=op
            ).observe(total_s)
        if worker is not None:
            self._heartbeats[worker] = self.config.clock()
        if self.registry is not None:
            # Deterministic cumulative mirror: proves (in the exact-gated
            # baseline) that the windowed layer saw every request.
            self.registry.counter(
                "serve_windowed_observations", op=op, status=status
            ).inc()
        self.slo.record(op, status, total_s)

    # -- views -------------------------------------------------------------

    def heartbeats(self) -> Dict[int, Dict[str, float]]:
        """Per-worker last-served timestamps, as ages against the clock."""
        now = self.config.clock()
        return {
            worker: {"last_seen_s_ago": max(0.0, now - at), "last_seen_at": at}
            for worker, at in sorted(self._heartbeats.items())
        }

    def export_alerts(self, target: Any) -> int:
        """Write the alert log as JSONL; returns the event count."""
        return self.slo.alert_log.export(target)


def build_health(
    monitor: Optional[ServiceHealth],
    queue_depth: int,
    inflight: int,
    max_queue: int,
    workers: Sequence[Dict[str, Any]],
    closed: bool = False,
) -> Dict[str, Any]:
    """The versioned ``health`` envelope body.

    Works with or without a monitor: an un-windowed service still
    reports the verdict, queue depth, inflight, and worker roster -
    the windowed/SLO sections are simply absent (``windowed: false``).
    """
    firing: List[str] = []
    degraded: List[str] = []
    if closed:
        degraded.append("service is closed")
    if max_queue > 0 and queue_depth >= max_queue:
        degraded.append(f"admission queue full ({queue_depth}/{max_queue})")
    doc: Dict[str, Any] = {
        "schema": HEALTH_SCHEMA,
        "queue_depth": queue_depth,
        "inflight": inflight,
        "max_queue": max_queue,
        "workers": list(workers),
        "windowed": monitor is not None,
    }
    if monitor is not None:
        # Evaluate first so an alert whose window has drained resolves on
        # the poll even when no request has arrived since.
        monitor.slo.evaluate()
        firing = monitor.slo.firing()
        for name in firing:
            degraded.append(f"SLO burn-rate alert firing: {name}")
        heartbeats = monitor.heartbeats()
        for entry in doc["workers"]:
            beat = heartbeats.get(entry.get("worker"))
            if beat is not None:
                entry.update(beat)
        doc["window"] = monitor.windows.summary()
        doc["slo"] = monitor.slo.burn_rates()
        doc["firing_alerts"] = firing
        doc["alert_log"] = {
            "events": len(monitor.slo.alert_log),
            "added": monitor.slo.alert_log.added,
            "evicted": monitor.slo.alert_log.evicted,
        }
    doc["verdict"] = "degraded" if degraded else "ready"
    doc["ready"] = not degraded
    doc["degraded_reasons"] = degraded
    return doc


__all__ = [
    "HealthConfig",
    "ServiceHealth",
    "VERDICTS",
    "build_health",
]
