"""The query service: admission, engine checkout, execution, accounting.

:class:`QueryService` is the thread-safe core both front-ends share - the
asyncio TCP server (:mod:`repro.serve.server`) and the in-process load
generators (:mod:`repro.serve.loadgen`).  One :meth:`submit` call is one
request's whole life:

1. **admission** - refused immediately (``shed``) when the wait queue is
   full;
2. **engine checkout** - block until a pool engine frees up, bounded by
   the admission deadline (``timeout``);
3. **execution** - the checked-out :class:`~repro.serve.engine.ServingEngine`
   runs the exact batch-path pipeline; results are bit-identical to a
   direct engine call;
4. **accounting** - every outcome increments
   ``serve_requests{op,status}``; latency splits land in the
   ``serve_wait_duration_s`` / ``serve_exec_duration_s`` /
   ``serve_request_duration_s`` histograms (per op); queue depth and
   inflight ride the ``serve_queue_depth`` / ``serve_inflight`` gauges.

The service owns a :class:`~repro.obs.metrics.MetricsRegistry` and scopes
it around execution with :func:`~repro.obs.metrics.use_registry`, so the
existing pipeline instrumentation (funnel counters, stage seconds,
refinement stats) publishes into it from every worker thread concurrently -
which is exactly the load that required making the registry thread-safe
and the install contextvar-scoped.

Per-request observability rides the same submit path, always scoped and
never process-global:

* with **tracing** enabled (:class:`~repro.serve.tracing.TracingConfig`),
  every request gets its *own* :class:`~repro.exec.trace.Tracer` - a
  ``request`` root span, a ``queue_wait`` span, an ``execute`` span under
  which the pipelines' :meth:`~repro.query.costs.CostBreakdown.time_stage`
  spans and the shard records of :mod:`repro.exec.parallel` parent - and
  the response echoes the ``trace_id`` (client-supplied or minted).
  Finished traces land in a bounded :class:`~repro.serve.tracing.TraceStore`
  exportable via :meth:`QueryService.export_traces`.
* Tracer scoping is **unconditional**: a tracer is single-control-flow, so
  every submit wraps itself in ``use_tracer(per_request_or_None)`` - a
  scoped ``None`` shields concurrent serving threads from any ambient
  process-global tracer that would interleave their spans.
* with a **slow-query log** (:class:`~repro.serve.slowlog.SlowLogConfig`),
  threshold-exceeding requests and every shed/timeout/error emit a JSONL
  forensics record (span tree, EXPLAIN funnel, cost stages, cache deltas,
  queue-wait split) via the per-request
  :meth:`~repro.serve.engine.ServingEngine.execute_forensic` path.
* with **windowed health** (:class:`~repro.serve.health.HealthConfig`),
  every outcome also lands in rolling per-op latency/outcome windows and
  the SLO burn-rate tracker, surfaced live through :meth:`QueryService.health`
  (the TCP ``health`` envelope and ``python -m repro.serve top``).
"""

from __future__ import annotations

import asyncio
import threading
import time
from contextlib import nullcontext
from typing import IO, Any, Dict, Optional, Tuple, Union

from ..exec.trace import Tracer, use_tracer
from ..obs.context import RequestContext, new_trace_id, use_context
from ..obs.metrics import MetricsRegistry, use_registry
from .admission import AdmissionConfig, AdmissionController
from .engine import EnginePool, ServingWorkload, WorkloadConfig
from .health import HealthConfig, ServiceHealth, build_health
from .schema import QueryRequest, QueryResponse
from .slowlog import SlowLogConfig, SlowQueryLog, build_record
from .tracing import TraceStore, TracingConfig


class QueryService:
    """Thread-safe serving core over one engine pool."""

    def __init__(
        self,
        workload: Optional[WorkloadConfig] = None,
        workers: int = 2,
        admission: Optional[AdmissionConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        warm: bool = False,
        tracing: Optional[TracingConfig] = None,
        slowlog: Optional[SlowLogConfig] = None,
        health: Optional[HealthConfig] = None,
    ) -> None:
        self.workload_config = workload if workload is not None else WorkloadConfig()
        self.admission_config = (
            admission if admission is not None else AdmissionConfig()
        )
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracing = tracing if tracing is not None else TracingConfig.disabled()
        #: Finished per-request span trees (only filled when tracing is on).
        self.traces = TraceStore(self.tracing.max_requests)
        self.slowlog: Optional[SlowQueryLog] = (
            SlowQueryLog(slowlog) if slowlog is not None else None
        )
        #: Windowed telemetry + SLO burn-rate monitor (None = off, the
        #: default: the submit path then pays one None check and the
        #: registry snapshot stays bit-identical to a health-free build).
        self.health_monitor: Optional[ServiceHealth] = (
            ServiceHealth(health, registry=self.registry)
            if health is not None
            else None
        )
        self.workload = ServingWorkload(self.workload_config)
        self.pool = EnginePool(self.workload, workers, warm=warm)
        self.admission = AdmissionController(
            self.admission_config, registry=self.registry
        )
        self._closed = threading.Event()
        reg = self.registry
        reg.gauge("serve_workers").set(workers)
        reg.gauge("serve_queue_capacity").set(self.admission_config.max_queue)

    # -- capacity (how many threads a front-end may need) -----------------

    @property
    def capacity(self) -> int:
        """Upper bound on requests usefully inside the service at once."""
        return self.pool.size + self.admission_config.max_queue

    # -- submission -------------------------------------------------------

    def submit(self, request: QueryRequest) -> QueryResponse:
        """Execute one request synchronously (blocking; thread-safe).

        Never raises for per-request problems: validation and execution
        failures come back as ``status="error"`` responses so one bad
        request cannot take down a serving thread.
        """
        start = time.perf_counter()
        tracing_on = self.tracing.enabled
        forensics = tracing_on or self.slowlog is not None
        trace_id = (request.trace_id or new_trace_id()) if forensics else None
        tracer = Tracer(trace_id=trace_id) if tracing_on else None
        context = None
        if forensics:
            timeout_s = self.admission_config.timeout_s
            context = RequestContext(
                trace_id=trace_id,  # type: ignore[arg-type]
                attributes={"op": request.op},
                deadline_unix_s=(
                    time.time() + timeout_s if timeout_s is not None else None
                ),
            )
        # Scoped even when tracing is off: a Tracer is single-control-flow,
        # so concurrent serving threads must never share one.  The scoped
        # per-request tracer - or an explicit None - shields this request
        # from any ambient process-global tracer.
        with use_context(context), use_tracer(tracer):
            if tracer is not None:
                with tracer.span("request", op=request.op) as root:
                    response, forensic = self._submit_core(
                        request, start, tracer
                    )
                    root.attributes["status"] = response.status
                    if response.worker is not None:
                        root.attributes["worker"] = response.worker
            else:
                response, forensic = self._submit_core(request, start, tracer)
        if trace_id is not None:
            response.trace_id = trace_id
        if tracer is not None:
            self.traces.add(tracer.spans)
        slowlog = self.slowlog
        if slowlog is not None and slowlog.should_log(
            response.status, response.total_s
        ):
            slowlog.record(
                build_record(
                    request,
                    response,
                    spans=tracer.spans if tracer is not None else (),
                    funnel=forensic.get("funnel"),
                    cost=forensic.get("cost"),
                    cache_delta=forensic.get("cache_delta"),
                    queue_depth=self.admission.queue_depth,
                )
            )
            self.registry.counter(
                "serve_slow_requests", op=request.op, status=response.status
            ).inc()
        return response

    def _submit_core(
        self,
        request: QueryRequest,
        start: float,
        tracer: Optional[Tracer],
    ) -> Tuple[QueryResponse, Dict[str, Any]]:
        """Admission -> engine checkout -> execution -> accounting.

        Returns the response plus the forensic artifacts (funnel, cost,
        cache deltas) gathered for the slow-query log along the way.
        """
        reg = self.registry
        forensic: Dict[str, Any] = {}
        if self._closed.is_set():
            return (
                self._finish(request, "error", start, error="service is closed"),
                forensic,
            )
        if not self.admission.try_admit():
            return self._finish(request, "shed", start), forensic

        engine = self.pool.acquire(self.admission_config.timeout_s)
        wait_s = time.perf_counter() - start
        if tracer is not None:
            tracer.record("queue_wait", wait_s)
        if engine is None:
            self.admission.abandon_queue()
            return (
                self._finish(request, "timeout", start, wait_s=wait_s),
                forensic,
            )

        self.admission.start_execution()
        try:
            exec_start = time.perf_counter()
            exec_span = (
                tracer.span("execute", worker=engine.worker_id)
                if tracer is not None
                else nullcontext()
            )
            with use_registry(reg), exec_span:
                if self.slowlog is not None:
                    results, cost, funnel, cache_delta = (
                        engine.execute_forensic(request)
                    )
                    forensic["funnel"] = funnel
                    forensic["cache_delta"] = cache_delta
                else:
                    results, cost = engine.execute(request)
            exec_s = time.perf_counter() - exec_start
        except Exception as exc:
            return (
                self._finish(
                    request,
                    "error",
                    start,
                    wait_s=wait_s,
                    worker=engine.worker_id,
                    error=f"{type(exc).__name__}: {exc}",
                ),
                forensic,
            )
        finally:
            self.admission.finish_execution()
            self.pool.release(engine)
        forensic["cost"] = cost
        return (
            self._finish(
                request,
                "ok",
                start,
                results=results,
                wait_s=wait_s,
                exec_s=exec_s,
                worker=engine.worker_id,
                attributes={"pairs_compared": cost.pairs_compared},
            ),
            forensic,
        )

    def export_traces(self, target: Union[str, IO[str]]) -> int:
        """Write every retained request trace as span JSONL; returns count.

        The output is the flat span format ``python -m repro.obs report``
        and ``python -m repro.obs timeline`` consume (ids namespaced per
        trace, every span stamped with its request's trace_id).
        """
        return self.traces.export(target)

    async def asubmit(
        self,
        request: QueryRequest,
        executor: Any = None,
    ) -> QueryResponse:
        """Asyncio facade: run :meth:`submit` on a thread-pool executor.

        ``executor`` should be sized to the service's :attr:`capacity` so
        the offload pool is never the bottleneck (the front-ends do this).
        """
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(executor, self.submit, request)

    # -- bookkeeping ------------------------------------------------------

    def _finish(
        self,
        request: QueryRequest,
        status: str,
        start: float,
        results: Optional[list] = None,
        wait_s: float = 0.0,
        exec_s: float = 0.0,
        worker: Optional[int] = None,
        error: Optional[str] = None,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> QueryResponse:
        total_s = time.perf_counter() - start
        reg = self.registry
        reg.counter("serve_requests", op=request.op, status=status).inc()
        if status == "ok":
            reg.histogram("serve_wait_duration_s", op=request.op).observe(wait_s)
            reg.histogram("serve_exec_duration_s", op=request.op).observe(exec_s)
            reg.histogram("serve_request_duration_s", op=request.op).observe(
                total_s
            )
        monitor = self.health_monitor
        if monitor is not None:
            monitor.record(request.op, status, total_s, worker=worker)
        return QueryResponse(
            status=status,
            op=request.op,
            results=results,
            request_id=request.request_id,
            worker=worker,
            wait_s=wait_s,
            exec_s=exec_s,
            total_s=total_s,
            error=error,
            attributes=dict(attributes) if attributes else {},
        )

    # -- introspection / lifecycle ----------------------------------------

    def describe(self) -> Dict[str, Any]:
        info = self.workload.describe()
        info.update(
            workers=self.pool.size,
            max_queue=self.admission_config.max_queue,
            timeout_s=self.admission_config.timeout_s,
            tracing=self.tracing.enabled,
            slowlog=self.slowlog is not None,
            windowed=self.health_monitor is not None,
        )
        return info

    def metrics_text(self) -> str:
        """Prometheus-style exposition of the service registry."""
        return self.registry.prometheus_text()

    def metrics_snapshot(self) -> Dict[str, Any]:
        return self.registry.snapshot()

    def health(self) -> Dict[str, Any]:
        """The versioned ``health`` envelope body (works with health off).

        Always cheap and safe to poll: it reads the admission gauges and
        the worker roster, and - when the windowed monitor is enabled -
        re-evaluates the SLO state machine so alerts resolve on the poll
        even when traffic has stopped.
        """
        return build_health(
            self.health_monitor,
            queue_depth=self.admission.queue_depth,
            inflight=self.admission.inflight,
            max_queue=self.admission_config.max_queue,
            workers=self.pool.worker_stats(),
            closed=self._closed.is_set(),
        )

    def export_alerts(self, target: Union[str, IO[str]]) -> int:
        """Write the SLO alert log as JSONL; returns the event count.

        Raises :class:`RuntimeError` when the service runs without the
        windowed monitor (there is no alert state machine to export).
        """
        if self.health_monitor is None:
            raise RuntimeError(
                "alert export requires the service to run with health"
                " tracking enabled (HealthConfig)"
            )
        return self.health_monitor.export_alerts(target)

    def close(self) -> None:
        """Refuse new work and release engine resources (idempotent)."""
        self._closed.set()
        self.pool.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = ["QueryService"]
