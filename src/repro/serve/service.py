"""The query service: admission, engine checkout, execution, accounting.

:class:`QueryService` is the thread-safe core both front-ends share - the
asyncio TCP server (:mod:`repro.serve.server`) and the in-process load
generators (:mod:`repro.serve.loadgen`).  One :meth:`submit` call is one
request's whole life:

1. **admission** - refused immediately (``shed``) when the wait queue is
   full;
2. **engine checkout** - block until a pool engine frees up, bounded by
   the admission deadline (``timeout``);
3. **execution** - the checked-out :class:`~repro.serve.engine.ServingEngine`
   runs the exact batch-path pipeline; results are bit-identical to a
   direct engine call;
4. **accounting** - every outcome increments
   ``serve_requests{op,status}``; latency splits land in the
   ``serve_wait_duration_s`` / ``serve_exec_duration_s`` /
   ``serve_request_duration_s`` histograms (per op); queue depth and
   inflight ride the ``serve_queue_depth`` / ``serve_inflight`` gauges.

The service owns a :class:`~repro.obs.metrics.MetricsRegistry` and scopes
it around execution with :func:`~repro.obs.metrics.use_registry`, so the
existing pipeline instrumentation (funnel counters, stage seconds,
refinement stats) publishes into it from every worker thread concurrently -
which is exactly the load that required making the registry thread-safe
and the install contextvar-scoped.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Any, Dict, Optional

from ..obs.metrics import MetricsRegistry, use_registry
from .admission import AdmissionConfig, AdmissionController
from .engine import EnginePool, ServingWorkload, WorkloadConfig
from .schema import QueryRequest, QueryResponse


class QueryService:
    """Thread-safe serving core over one engine pool."""

    def __init__(
        self,
        workload: Optional[WorkloadConfig] = None,
        workers: int = 2,
        admission: Optional[AdmissionConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        warm: bool = False,
    ) -> None:
        self.workload_config = workload if workload is not None else WorkloadConfig()
        self.admission_config = (
            admission if admission is not None else AdmissionConfig()
        )
        self.registry = registry if registry is not None else MetricsRegistry()
        self.workload = ServingWorkload(self.workload_config)
        self.pool = EnginePool(self.workload, workers, warm=warm)
        self.admission = AdmissionController(
            self.admission_config, registry=self.registry
        )
        self._closed = threading.Event()
        reg = self.registry
        reg.gauge("serve_workers").set(workers)
        reg.gauge("serve_queue_capacity").set(self.admission_config.max_queue)

    # -- capacity (how many threads a front-end may need) -----------------

    @property
    def capacity(self) -> int:
        """Upper bound on requests usefully inside the service at once."""
        return self.pool.size + self.admission_config.max_queue

    # -- submission -------------------------------------------------------

    def submit(self, request: QueryRequest) -> QueryResponse:
        """Execute one request synchronously (blocking; thread-safe).

        Never raises for per-request problems: validation and execution
        failures come back as ``status="error"`` responses so one bad
        request cannot take down a serving thread.
        """
        start = time.perf_counter()
        reg = self.registry
        if self._closed.is_set():
            return self._finish(
                request, "error", start, error="service is closed"
            )
        if not self.admission.try_admit():
            return self._finish(request, "shed", start)

        engine = self.pool.acquire(self.admission_config.timeout_s)
        wait_s = time.perf_counter() - start
        if engine is None:
            self.admission.abandon_queue()
            return self._finish(request, "timeout", start, wait_s=wait_s)

        self.admission.start_execution()
        try:
            exec_start = time.perf_counter()
            with use_registry(reg):
                results, cost = engine.execute(request)
            exec_s = time.perf_counter() - exec_start
        except Exception as exc:
            return self._finish(
                request,
                "error",
                start,
                wait_s=wait_s,
                worker=engine.worker_id,
                error=f"{type(exc).__name__}: {exc}",
            )
        finally:
            self.admission.finish_execution()
            self.pool.release(engine)
        return self._finish(
            request,
            "ok",
            start,
            results=results,
            wait_s=wait_s,
            exec_s=exec_s,
            worker=engine.worker_id,
            attributes={"pairs_compared": cost.pairs_compared},
        )

    async def asubmit(
        self,
        request: QueryRequest,
        executor: Any = None,
    ) -> QueryResponse:
        """Asyncio facade: run :meth:`submit` on a thread-pool executor.

        ``executor`` should be sized to the service's :attr:`capacity` so
        the offload pool is never the bottleneck (the front-ends do this).
        """
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(executor, self.submit, request)

    # -- bookkeeping ------------------------------------------------------

    def _finish(
        self,
        request: QueryRequest,
        status: str,
        start: float,
        results: Optional[list] = None,
        wait_s: float = 0.0,
        exec_s: float = 0.0,
        worker: Optional[int] = None,
        error: Optional[str] = None,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> QueryResponse:
        total_s = time.perf_counter() - start
        reg = self.registry
        reg.counter("serve_requests", op=request.op, status=status).inc()
        if status == "ok":
            reg.histogram("serve_wait_duration_s", op=request.op).observe(wait_s)
            reg.histogram("serve_exec_duration_s", op=request.op).observe(exec_s)
            reg.histogram("serve_request_duration_s", op=request.op).observe(
                total_s
            )
        return QueryResponse(
            status=status,
            op=request.op,
            results=results,
            request_id=request.request_id,
            worker=worker,
            wait_s=wait_s,
            exec_s=exec_s,
            total_s=total_s,
            error=error,
            attributes=dict(attributes) if attributes else {},
        )

    # -- introspection / lifecycle ----------------------------------------

    def describe(self) -> Dict[str, Any]:
        info = self.workload.describe()
        info.update(
            workers=self.pool.size,
            max_queue=self.admission_config.max_queue,
            timeout_s=self.admission_config.timeout_s,
        )
        return info

    def metrics_text(self) -> str:
        """Prometheus-style exposition of the service registry."""
        return self.registry.prometheus_text()

    def metrics_snapshot(self) -> Dict[str, Any]:
        return self.registry.snapshot()

    def close(self) -> None:
        """Refuse new work and release engine resources (idempotent)."""
        self._closed.set()
        self.pool.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = ["QueryService"]
