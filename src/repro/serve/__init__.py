"""repro.serve: a concurrent query service over the spatial engine.

The batch layers answer "how fast is one query"; this package answers
"how many concurrent clients can a process sustain, at what latency".
It is deliberately thin - persistent engines + admission control +
accounting - because the serving determinism property requires that it
adds **no execution path of its own**: every response is bit-identical
to a direct engine call.

Layers (each its own module):

* :mod:`~repro.serve.schema` - versioned request/response wire types;
* :mod:`~repro.serve.engine` - the persistent per-worker engines, warm
  pipelines, and the checkout pool;
* :mod:`~repro.serve.admission` - bounded queueing with explicit shed
  and timeout outcomes;
* :mod:`~repro.serve.service` - the thread-safe core gluing those
  together and accounting every request into the metrics registry;
* :mod:`~repro.serve.tracing` - per-request tracer policy and the
  bounded store of finished request span trees;
* :mod:`~repro.serve.slowlog` - slow-query forensics records (span tree,
  EXPLAIN funnel, cost stages, cache deltas) and their offline summary;
* :mod:`~repro.serve.health` - windowed per-op telemetry, SLO burn-rate
  alerting, worker heartbeats, and the ``health`` envelope verdict;
* :mod:`~repro.serve.server` - the asyncio TCP JSON-lines front-end;
* :mod:`~repro.serve.loadgen` - open-loop and closed-loop load
  generators emitting RunReports for CI gating;
* :mod:`~repro.serve.top` - the live terminal dashboard polling
  ``metrics`` + ``health`` (``python -m repro.serve top``).
"""

from .admission import AdmissionConfig, AdmissionController
from .engine import BACKENDS, EnginePool, ServingEngine, ServingWorkload, WorkloadConfig
from .loadgen import (
    DEFAULT_MIX,
    LoadAccountingError,
    LoadgenConfig,
    LoadResult,
    build_schedule,
    run_closed_loop,
    run_open_loop,
    run_sweep,
)
from .health import HealthConfig, ServiceHealth, build_health
from .schema import (
    HEALTH_SCHEMA,
    REQUEST_SCHEMA,
    RESPONSE_SCHEMA,
    SERVE_OPS,
    STATUSES,
    QueryRequest,
    QueryResponse,
    canonical_results,
)
from .server import ServeFrontend, run_server, send_envelope
from .service import QueryService
from .top import fetch_snapshot, render, run_top
from .slowlog import (
    SLOWLOG_SCHEMA,
    SlowLogConfig,
    SlowQueryLog,
    build_record,
    load_slowlog,
    summarize_slowlog,
)
from .tracing import TraceStore, TracingConfig

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "BACKENDS",
    "DEFAULT_MIX",
    "EnginePool",
    "HEALTH_SCHEMA",
    "HealthConfig",
    "LoadAccountingError",
    "LoadResult",
    "LoadgenConfig",
    "QueryRequest",
    "QueryResponse",
    "QueryService",
    "REQUEST_SCHEMA",
    "RESPONSE_SCHEMA",
    "SERVE_OPS",
    "SLOWLOG_SCHEMA",
    "STATUSES",
    "ServeFrontend",
    "ServiceHealth",
    "ServingEngine",
    "ServingWorkload",
    "SlowLogConfig",
    "SlowQueryLog",
    "TraceStore",
    "TracingConfig",
    "WorkloadConfig",
    "build_health",
    "build_record",
    "build_schedule",
    "canonical_results",
    "fetch_snapshot",
    "load_slowlog",
    "render",
    "run_closed_loop",
    "run_open_loop",
    "run_server",
    "run_sweep",
    "run_top",
    "send_envelope",
    "summarize_slowlog",
]
