"""``python -m repro.serve top``: a live terminal dashboard over the wire.

Polls a running front-end's ``health`` and ``metrics`` envelopes on an
interval and renders one screen an operator can leave open: the
readiness verdict, queue depth / inflight, the per-op **windowed**
p50/p95/p99 and request rates next to the **cumulative** ones (the pair
that makes a regression-happening-now visible while the lifetime
aggregate still looks fine), SLO burn rates with their alert states, and
the engine-pool worker roster with heartbeats.

Two one-shot modes for scripts and CI:

* ``--once`` - fetch and render a single frame, then exit (the smoke
  test: does the dashboard build against a live server?);
* ``--once --json`` - emit the raw ``{"health": ..., "metrics": ...}``
  document instead of the rendering (the machine-readable mode).

Pure stdlib, no curses: the live loop repaints with ANSI clear-screen,
so it works in any terminal CI tails.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Mapping, Optional

from ..obs.metrics import parse_key
from .server import send_envelope

#: ANSI "clear screen, cursor home" the live loop repaints with.
CLEAR = "\x1b[2J\x1b[H"


def fetch_snapshot(
    host: str, port: int, timeout: Optional[float] = 30.0
) -> Dict[str, Any]:
    """One poll: the ``health`` and ``metrics`` envelope bodies."""
    health = send_envelope(host, port, {"kind": "health"}, timeout=timeout)
    metrics = send_envelope(host, port, {"kind": "metrics"}, timeout=timeout)
    if health.get("kind") != "health":
        raise ValueError(f"unexpected reply to health poll: {health!r}")
    if metrics.get("kind") != "metrics":
        raise ValueError(f"unexpected reply to metrics poll: {metrics!r}")
    return {"health": health["health"], "metrics": metrics["snapshot"]}


# -- rendering ----------------------------------------------------------------


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:8.1f}"


def _cumulative_by_op(
    snapshot: Mapping[str, Any],
) -> Dict[str, Dict[str, Any]]:
    """Per-op lifetime stats from the registry snapshot."""
    out: Dict[str, Dict[str, Any]] = {}
    for key, value in snapshot.get("counters", {}).items():
        name, labels = parse_key(key)
        if name != "serve_requests":
            continue
        d = dict(labels)
        entry = out.setdefault(d.get("op", "?"), {"requests": 0, "ok": 0})
        entry["requests"] += value
        if d.get("status") == "ok":
            entry["ok"] += value
    for key, hist in snapshot.get("histograms", {}).items():
        name, labels = parse_key(key)
        if name != "serve_request_duration_s":
            continue
        op = dict(labels).get("op", "?")
        out.setdefault(op, {"requests": 0, "ok": 0})["hist"] = hist
    return out


def _hist_quantile(hist: Mapping[str, Any], q: float) -> float:
    """Conservative quantile from a snapshot histogram (mirrors Histogram)."""
    import math

    count = hist.get("count", 0)
    if not count:
        return 0.0
    rank = max(1, math.ceil(q * count))
    cumulative = hist.get("zeros", 0)
    if rank <= cumulative:
        return 0.0
    hmax = hist.get("max", 0.0)
    for e_str, n in sorted(
        hist.get("buckets", {}).items(), key=lambda kv: int(kv[0])
    ):
        cumulative += n
        if rank <= cumulative:
            return min(2.0 ** int(e_str), hmax)
    return hmax


def render(doc: Mapping[str, Any], now: Optional[float] = None) -> str:
    """One dashboard frame from a :func:`fetch_snapshot` document."""
    health = doc["health"]
    snapshot = doc["metrics"]
    lines: List[str] = []
    verdict = health.get("verdict", "?")
    banner = f"repro.serve  [{verdict.upper()}]"
    if now is not None:
        banner += time.strftime("  %H:%M:%S", time.localtime(now))
    lines.append(banner)
    for reason in health.get("degraded_reasons", []):
        lines.append(f"  !! {reason}")
    lines.append(
        f"queue {health.get('queue_depth', 0)}/{health.get('max_queue', 0)}"
        f"   inflight {health.get('inflight', 0)}"
        f"   windowed {'on' if health.get('windowed') else 'off'}"
    )

    # Per-op table: windowed (happening now) vs cumulative (lifetime).
    window = health.get("window", {})
    win_hists = window.get("histograms", {})
    win_counters = window.get("counters", {})
    cumulative = _cumulative_by_op(snapshot)
    ops = sorted(
        set(cumulative)
        | {dict(parse_key(k)[1]).get("op", "?") for k in win_hists}
    )
    if ops:
        window_s = window.get("window_s")
        span = f"{window_s:g}s window" if window_s else "window off"
        lines.append("")
        lines.append(
            f"{'op':<16} {'rate/s':>7} {'w_p50':>8} {'w_p95':>8} {'w_p99':>8}"
            f" | {'total':>7} {'c_p50':>8} {'c_p95':>8} {'c_p99':>8}  ({span},"
            " latencies ms)"
        )
        for op in ops:
            win = win_hists.get(f"serve_window_request_duration_s{{op={op}}}", {})
            rate = sum(
                c.get("rate", 0.0)
                for key, c in win_counters.items()
                if parse_key(key)[0] == "serve_window_requests"
                and dict(parse_key(key)[1]).get("op") == op
            )
            cum = cumulative.get(op, {})
            hist = cum.get("hist", {})
            lines.append(
                f"{op:<16} {rate:>7.2f}"
                f" {_fmt_ms(win.get('p50', 0.0))} {_fmt_ms(win.get('p95', 0.0))}"
                f" {_fmt_ms(win.get('p99', 0.0))} | {cum.get('requests', 0):>7}"
                f" {_fmt_ms(_hist_quantile(hist, 0.50))}"
                f" {_fmt_ms(_hist_quantile(hist, 0.95))}"
                f" {_fmt_ms(_hist_quantile(hist, 0.99))}"
            )

    # SLO burn rates and alerts.
    slo = health.get("slo", {})
    if slo:
        lines.append("")
        lines.append(
            f"{'SLO':<16} {'state':<8} {'burn_fast':>9} {'burn_slow':>9}"
            f" {'budget':>7}"
        )
        for name in sorted(slo):
            entry = slo[name]
            lines.append(
                f"{name:<16} {entry.get('state', '?'):<8}"
                f" {entry.get('burn_fast', 0.0):>9.2f}"
                f" {entry.get('burn_slow', 0.0):>9.2f}"
                f" {entry.get('budget', 0.0):>7.3f}"
            )
        firing = health.get("firing_alerts", [])
        log = health.get("alert_log", {})
        lines.append(
            f"alerts firing: {', '.join(firing) if firing else 'none'}"
            f"   (log: {log.get('events', 0)} event(s))"
        )

    # Worker roster.
    workers = health.get("workers", [])
    if workers:
        lines.append("")
        lines.append(f"{'worker':<8} {'served':>8}  last seen")
        for entry in workers:
            ago = entry.get("last_seen_s_ago")
            seen = f"{ago:6.1f}s ago" if ago is not None else "-"
            lines.append(
                f"{entry.get('worker', '?'):<8}"
                f" {entry.get('requests_served', 0):>8}  {seen}"
            )
    return "\n".join(lines)


# -- the loop -----------------------------------------------------------------


def run_top(
    host: str,
    port: int,
    interval_s: float = 2.0,
    once: bool = False,
    as_json: bool = False,
    timeout: Optional[float] = 30.0,
    max_frames: Optional[int] = None,
) -> int:
    """Poll and render until interrupted (or once).  Returns an exit code.

    ``max_frames`` exists for tests; interactive runs stop on Ctrl-C.
    """
    frames = 0
    try:
        while True:
            try:
                doc = fetch_snapshot(host, port, timeout=timeout)
            except (OSError, ValueError) as exc:
                print(f"error: {exc}")
                return 2
            if once:
                if as_json:
                    print(json.dumps(doc, indent=2, sort_keys=True))
                else:
                    print(render(doc, now=time.time()))
                return 0 if doc["health"].get("ready") else 1
            print(CLEAR + render(doc, now=time.time()), flush=True)
            frames += 1
            if max_frames is not None and frames >= max_frames:
                return 0
            time.sleep(interval_s)
    except KeyboardInterrupt:
        return 0


__all__ = ["CLEAR", "fetch_snapshot", "render", "run_top"]
