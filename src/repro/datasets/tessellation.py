"""Voronoi tessellation layers with fractal boundary detail.

The paper's polygonal layers are mostly *partitions of space*: land-cover
patches, ownership parcels, precipitation zones, and state boundaries tile
their extent.  That structure drives the experiments in a way blob soups
cannot: when a partition layer is overlaid with another layer, a candidate
pair whose MBRs overlap is very often a *negative* whose boundaries are
clearly separated inside the common window (an object lies inside one cell,
and the neighbor cell's boundary passes along one side of the window) - the
expensive software case the hardware filter eliminates.

Construction:

1. clustered seed points in the world rectangle; the Voronoi diagram is
   bounded by mirroring all seeds across the four world edges (every
   original seed's region is then finite and inside the world);
2. every Voronoi edge is replaced by a fractal midpoint-displacement
   polyline whose detail length is chosen so the layer hits a target mean
   vertex count.  The displacement RNG is seeded from the *undirected*
   edge's endpoints, so the two cells sharing an edge get the identical
   polyline and the layer remains a gap-free tessellation even though each
   cell is generated independently.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np
from scipy.spatial import Voronoi

from ..geometry.polygon import Polygon
from ..geometry.rect import Rect


@dataclass(frozen=True)
class TessellationConfig:
    """Parameters of one tessellation layer."""

    world: Rect
    cell_count: int
    #: Target mean vertices per cell; boundary detail length is derived
    #: from it and the measured cell perimeters.
    mean_vertices: float
    #: Relative amplitude of the fractal boundary displacement.  0 keeps
    #: straight Voronoi edges; ~0.2 gives land-cover-like wiggle.  Kept
    #: moderate so cells stay simple polygons.
    roughness: float = 0.18
    cluster_count: int = 16
    #: Seed concentration: smaller values pack seeds tightly into their
    #: clusters, leaving large void cells between clusters - the giant
    #: patches behind Table 2's heavy-tailed maxima (a cell's vertex count
    #: grows with its perimeter).  1.0 spreads seeds almost uniformly.
    cluster_tightness: float = 1.0
    #: Cluster anisotropy: > 1 stretches seed clusters along a shared
    #: direction (banded climate zones).
    band_elongation: float = 1.0

    def __post_init__(self) -> None:
        if self.cell_count < 1:
            raise ValueError("cell_count must be >= 1")
        if self.mean_vertices < 4:
            raise ValueError("mean_vertices must be >= 4")
        if not 0.0 <= self.roughness < 0.5:
            raise ValueError("roughness must be in [0, 0.5)")


def _clustered_seeds(config: TessellationConfig, rng: random.Random) -> np.ndarray:
    world = config.world
    extent = min(world.width, world.height)
    spread = (
        extent
        / max(1.0, math.sqrt(config.cluster_count))
        * 0.9
        * config.cluster_tightness
    )
    clusters = [
        (
            rng.uniform(world.xmin, world.xmax),
            rng.uniform(world.ymin, world.ymax),
            rng.uniform(0.0, math.pi),
        )
        for _ in range(max(1, config.cluster_count))
    ]
    pts = []
    margin = extent * 1e-3
    for _ in range(config.cell_count):
        cx, cy, angle = clusters[rng.randrange(len(clusters))]
        du = rng.gauss(0.0, spread * config.band_elongation)
        dv = rng.gauss(0.0, spread / config.band_elongation)
        ca, sa = math.cos(angle), math.sin(angle)
        x = cx + ca * du - sa * dv
        y = cy + sa * du + ca * dv
        pts.append(
            (
                min(max(x, world.xmin + margin), world.xmax - margin),
                min(max(y, world.ymin + margin), world.ymax - margin),
            )
        )
    return np.array(pts, dtype=np.float64)


def _bounded_voronoi_cells(
    seeds: np.ndarray, world: Rect
) -> List[List[Tuple[float, float]]]:
    """Finite Voronoi cell rings for each seed, bounded by the world rect.

    Uses the reflection trick: mirroring every seed across each world edge
    makes each original region finite and clipped to the world.
    """
    if len(seeds) == 1:
        return [[(world.xmin, world.ymin), (world.xmax, world.ymin),
                 (world.xmax, world.ymax), (world.xmin, world.ymax)]]
    mirrored = [seeds]
    for axis, value in (
        (0, world.xmin),
        (0, world.xmax),
        (1, world.ymin),
        (1, world.ymax),
    ):
        reflected = seeds.copy()
        reflected[:, axis] = 2.0 * value - reflected[:, axis]
        mirrored.append(reflected)
    all_points = np.vstack(mirrored)
    vor = Voronoi(all_points)
    cells: List[List[Tuple[float, float]]] = []
    for i in range(len(seeds)):
        region_index = vor.point_region[i]
        region = vor.regions[region_index]
        ring = [tuple(vor.vertices[v]) for v in region if v != -1]
        cells.append(ring)
    return cells


def _edge_rng(
    p: Tuple[float, float], q: Tuple[float, float], layer_seed: int
) -> Tuple[random.Random, bool]:
    """Deterministic RNG for an undirected edge, plus orientation flag.

    Endpoints are rounded to a fine grid before hashing so the float noise
    of Voronoi vertices shared between cells cannot desynchronize the seed.
    """
    a = (round(p[0], 9), round(p[1], 9))
    b = (round(q[0], 9), round(q[1], 9))
    flipped = b < a
    lo, hi = (b, a) if flipped else (a, b)
    seed = hash((lo, hi, layer_seed))
    return random.Random(seed), flipped


def _displaced_polyline(
    p: Tuple[float, float],
    q: Tuple[float, float],
    detail_len: float,
    roughness: float,
    rng: random.Random,
) -> List[Tuple[float, float]]:
    """Fractal polyline from ``p`` to ``q`` (excluding ``q``).

    Recursive midpoint displacement: each level perturbs the midpoint
    perpendicular to the chord, with amplitude proportional to the chord
    length - straight Voronoi borders become digitized-looking boundaries
    with detail at every scale down to ``detail_len``.
    """
    dx = q[0] - p[0]
    dy = q[1] - p[1]
    length = math.hypot(dx, dy)
    if length <= detail_len:
        return [p]
    offset = rng.gauss(0.0, roughness * length * 0.45)
    # Clamp so adjacent chords cannot fold back over each other.
    limit = 0.35 * length
    offset = max(-limit, min(limit, offset))
    mx = (p[0] + q[0]) * 0.5 - dy / length * offset
    my = (p[1] + q[1]) * 0.5 + dx / length * offset
    mid = (mx, my)
    return (
        _displaced_polyline(p, mid, detail_len, roughness, rng)
        + _displaced_polyline(mid, q, detail_len, roughness, rng)
    )


def _detail_polyline(
    p: Tuple[float, float],
    q: Tuple[float, float],
    detail_len: float,
    roughness: float,
    layer_seed: int,
) -> List[Tuple[float, float]]:
    """The shared fractal polyline of an undirected cell border.

    Generated in a canonical orientation and flipped as needed, so the two
    cells sharing the border trace the identical curve in opposite
    directions (gap-free tessellation).
    """
    rng, flipped = _edge_rng(p, q, layer_seed)
    if flipped:
        pts = _displaced_polyline(q, p, detail_len, roughness, rng)
        pts = pts + [p]
        pts.reverse()
        return pts[:-1]  # now starts at p, excludes q
    return _displaced_polyline(p, q, detail_len, roughness, rng)


def generate_tessellation(config: TessellationConfig, seed: int) -> List[Polygon]:
    """Generate the tessellation layer (deterministic per seed)."""
    rng = random.Random(seed)
    seeds = _clustered_seeds(config, rng)
    rings = _bounded_voronoi_cells(seeds, config.world)

    total_perimeter = 0.0
    for ring in rings:
        for k in range(len(ring)):
            p = ring[k]
            q = ring[(k + 1) % len(ring)]
            total_perimeter += math.hypot(q[0] - p[0], q[1] - p[1])
    # Each border is traced by two cells; mean vertices per cell is
    # (perimeter / detail_len) so detail_len follows from the target.
    wanted_total_vertices = config.mean_vertices * len(rings)
    detail_len = max(total_perimeter / wanted_total_vertices, 1e-12)

    world = config.world

    def clamp(pt: Tuple[float, float]) -> Tuple[float, float]:
        # Displacement may push border detail outside the world rectangle;
        # clamping is applied identically by both cells sharing a border,
        # so the tessellation stays gap-free.
        return (
            min(max(pt[0], world.xmin), world.xmax),
            min(max(pt[1], world.ymin), world.ymax),
        )

    def build(dl: float) -> List[Polygon]:
        out: List[Polygon] = []
        for ring in rings:
            coords: List[Tuple[float, float]] = []
            n = len(ring)
            for k in range(n):
                coords.extend(
                    clamp(pt)
                    for pt in _detail_polyline(
                        ring[k],
                        ring[(k + 1) % n],
                        dl,
                        config.roughness,
                        layer_seed=seed,
                    )
                )
            # Clamping can collapse consecutive detail points onto the world
            # border; drop exact duplicates to keep edges non-degenerate.
            deduped: List[Tuple[float, float]] = []
            for pt in coords:
                if not deduped or deduped[-1] != pt:
                    deduped.append(pt)
            if len(deduped) > 1 and deduped[0] == deduped[-1]:
                deduped.pop()
            if len(deduped) < 3:
                deduped = list(ring)
            out.append(Polygon.from_coords(deduped))
        return out

    # Midpoint displacement lengthens the borders, so a first build
    # overshoots the vertex target; one corrective pass recalibrates the
    # detail length (deterministic: same per-edge RNG seeds).
    polygons = build(detail_len)
    measured_mean = sum(p.num_vertices for p in polygons) / len(polygons)
    if measured_mean > config.mean_vertices * 1.15:
        polygons = build(detail_len * measured_mean / config.mean_vertices)
    return polygons
