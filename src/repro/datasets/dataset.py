"""Dataset container and Table-2 statistics.

A :class:`SpatialDataset` is what queries run against: an ordered collection
of polygons with cached MBRs (the filtering step never touches geometry).
:class:`DatasetStats` mirrors the columns of the paper's Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from ..geometry.polygon import Polygon
from ..geometry.rect import Rect


@dataclass(frozen=True)
class DatasetStats:
    """One row of the paper's Table 2."""

    name: str
    count: int
    min_vertices: int
    max_vertices: int
    mean_vertices: float

    def row(self) -> str:
        """Formatted like Table 2: N, then min/max/mean vertices."""
        return (
            f"{self.name:<10} {self.count:>7} {self.min_vertices:>5} "
            f"{self.max_vertices:>7} {self.mean_vertices:>7.0f}"
        )


class SpatialDataset:
    """An immutable, in-memory polygon dataset."""

    def __init__(
        self,
        name: str,
        polygons: Sequence[Polygon],
        world: Optional[Rect] = None,
    ) -> None:
        if not polygons:
            raise ValueError(f"dataset {name!r} must contain at least one polygon")
        self.name = name
        self.polygons: List[Polygon] = list(polygons)
        self.mbrs: List[Rect] = [p.mbr for p in self.polygons]
        self.world = world if world is not None else Rect.union_all(self.mbrs)

    def __len__(self) -> int:
        return len(self.polygons)

    def __getitem__(self, idx: int) -> Polygon:
        return self.polygons[idx]

    def __iter__(self) -> Iterator[Polygon]:
        return iter(self.polygons)

    def __repr__(self) -> str:
        return f"SpatialDataset({self.name!r}, {len(self)} polygons)"

    def stats(self) -> DatasetStats:
        """The dataset's Table 2 row."""
        counts = [p.num_vertices for p in self.polygons]
        return DatasetStats(
            name=self.name,
            count=len(counts),
            min_vertices=min(counts),
            max_vertices=max(counts),
            mean_vertices=sum(counts) / len(counts),
        )

    def total_vertices(self) -> int:
        return sum(p.num_vertices for p in self.polygons)

    def average_mbr_extent(self) -> float:
        """``sqrt(mean_width * mean_height)`` - the per-dataset term of the
        paper's Equation (2) BaseD calculation."""
        mean_w = sum(r.width for r in self.mbrs) / len(self.mbrs)
        mean_h = sum(r.height for r in self.mbrs) / len(self.mbrs)
        return (mean_w * mean_h) ** 0.5


def base_distance(a: SpatialDataset, b: SpatialDataset) -> float:
    """Equation (2): the BaseD unit for within-distance experiments.

    ``BaseD = (sqrt(mean_w1 * mean_h1) + sqrt(mean_w2 * mean_h2)) / 2`` - the
    average MBR extent of the two datasets, so ``0.1 x BaseD`` means "close
    vicinity" and ``4 x BaseD`` "a reasonably long distance" regardless of
    the datasets' absolute scale.
    """
    return (a.average_mbr_extent() + b.average_mbr_extent()) / 2.0
