"""The five datasets of the paper's Table 2, as synthetic stand-ins.

Each catalog entry records the real dataset's statistics (object count and
min/max/mean vertices per polygon from Table 2) and a *structural model*
matched to what the layer actually is:

* **tessellations** - LANDC (land-cover patches), LANDO (ownership
  parcels), PRISM (precipitation zones), and STATES50 (state boundaries)
  partition their extent: Voronoi cells with fractal boundary detail
  (:mod:`repro.datasets.tessellation`).  Overlaying a tessellation with
  another layer yields the candidate-pair population the paper's
  refinement experiments live on: many MBR overlaps whose geometries are
  contained in / separated from the neighbor cells.
* **feature layers** - WATER (water bodies) is a sparse collection of
  elongated, heavy-tailed blobs (:mod:`repro.datasets.generator`) sitting
  *within* the other layers' cells.

LANDC and LANDO share a Wyoming extent; STATES50, PRISM and WATER share a
conterminous-US extent, with STATES50's 31 large polygons serving as the
selection query set (paper section 4.1.2).

``load(name, n_scale, v_scale, seed)`` scales object counts and vertex
counts down so the pure-Python substrate finishes experiments in reasonable
time; the scale factors used are recorded in every experiment's parameters
and in EXPERIMENTS.md.  Scaling preserves the properties the experiments
exercise: relative complexity across datasets, tessellation structure,
MBR-overlap density, and heavy-tailed vertex counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from ..geometry.rect import Rect
from .dataset import SpatialDataset
from .generator import GeneratorConfig, VertexCountModel, generate_layer
from .tessellation import TessellationConfig, generate_tessellation

#: Wyoming at 1:100,000 scale (degrees, as in the source data).
WYOMING = Rect(-111.05, 40.99, -104.05, 45.01)
#: Conterminous United States at 1:2,000,000 scale.
CONUS = Rect(-124.7, 24.5, -66.9, 49.4)


@dataclass(frozen=True)
class CatalogEntry:
    """Full-scale statistics (Table 2) plus synthetic layout parameters."""

    name: str
    description: str
    #: Table 2 statistics of the real dataset.
    count: int
    vmin: int
    vmax: int
    vmean: float
    world: Rect
    #: "tessellation" or "blobs".
    kind: str
    seed: int
    # Tessellation parameters.
    roughness: float = 0.18
    cluster_count: int = 16
    cluster_tightness: float = 1.0
    band_elongation: float = 1.0
    # Blob parameters.
    coverage: float = 1.0
    elongation: float = 1.0
    orientation_correlation: float = 0.0
    nonsimple_fraction: float = 0.0


CATALOG: Dict[str, CatalogEntry] = {
    "LANDC": CatalogEntry(
        name="LANDC",
        description="Wyoming land cover (vegetation types), 1:100,000",
        count=14_731,
        vmin=3,
        vmax=4_397,
        vmean=192.0,
        world=WYOMING,
        kind="tessellation",
        seed=1001,
        roughness=0.22,
        cluster_count=40,
        cluster_tightness=0.3,
    ),
    "LANDO": CatalogEntry(
        name="LANDO",
        description="Wyoming land ownership and management, 1:100,000",
        count=33_860,
        vmin=3,
        vmax=8_807,
        vmean=20.0,
        world=WYOMING,
        kind="tessellation",
        seed=1002,
        roughness=0.10,  # survey parcels: straighter borders
        cluster_count=60,
        cluster_tightness=0.45,
    ),
    "STATES50": CatalogEntry(
        name="STATES50",
        description="US state boundaries (excluding islands), 1:2,000,000",
        count=31,
        vmin=4,
        vmax=10_744,
        vmean=138.0,
        world=CONUS,
        kind="tessellation",
        seed=1003,
        roughness=0.15,
        cluster_count=31,
    ),
    "PRISM": CatalogEntry(
        name="PRISM",
        description="Average annual precipitation zones, 1961-1990",
        count=6_243,
        vmin=3,
        vmax=29_556,
        vmean=68.0,
        world=CONUS,
        kind="tessellation",
        seed=1004,
        roughness=0.20,
        cluster_count=30,
        band_elongation=2.5,  # terrain-banded climate zones
    ),
    "WATER": CatalogEntry(
        name="WATER",
        description="Hydrography (water bodies), conterminous US",
        count=21_866,
        vmin=3,
        vmax=39_360,
        vmean=91.0,
        world=CONUS,
        kind="blobs",
        seed=1005,
        coverage=0.45,
        elongation=3.0,
        orientation_correlation=0.8,
        cluster_count=70,
        roughness=0.45,
    ),
}


def dataset_names() -> list[str]:
    """The five Table 2 dataset names."""
    return list(CATALOG)


def load(
    name: str,
    n_scale: float = 1.0,
    v_scale: float = 1.0,
    seed: Optional[int] = None,
) -> SpatialDataset:
    """Generate a (scaled) synthetic stand-in for dataset ``name``.

    ``n_scale`` scales the object count and ``v_scale`` the vertex-count
    distribution (mean and max; the minimum of 3 is a hard floor).  With
    both at 1.0 the full Table 2 statistics are targeted - feasible to
    generate, but large for pure-Python experiments; the benchmarks use
    documented fractions.
    """
    if name not in CATALOG:
        raise KeyError(f"unknown dataset {name!r}; choose from {sorted(CATALOG)}")
    if not 0.0 < n_scale <= 1.0 or not 0.0 < v_scale <= 1.0:
        raise ValueError("scales must be in (0, 1]")
    entry = CATALOG[name]
    count = max(1, round(entry.count * n_scale))
    vmean = max(6.0, entry.vmean * v_scale)
    vmax = max(int(math.ceil(vmean)) + 1, round(entry.vmax * v_scale))
    actual_seed = seed if seed is not None else entry.seed

    if entry.kind == "tessellation":
        config = TessellationConfig(
            world=entry.world,
            cell_count=count,
            mean_vertices=vmean,
            roughness=entry.roughness,
            cluster_count=max(1, round(entry.cluster_count * math.sqrt(n_scale))),
            cluster_tightness=entry.cluster_tightness,
            band_elongation=entry.band_elongation,
        )
        layer = generate_tessellation(config, actual_seed)
    else:
        model = VertexCountModel(vmin=entry.vmin, vmax=vmax, mean=vmean)
        blob_config = GeneratorConfig(
            world=entry.world,
            count=count,
            vertex_model=model,
            coverage=entry.coverage,
            elongation=entry.elongation,
            orientation_correlation=entry.orientation_correlation,
            cluster_count=max(1, round(entry.cluster_count * math.sqrt(n_scale))),
            roughness=entry.roughness,
            nonsimple_fraction=entry.nonsimple_fraction,
        )
        layer = generate_layer(blob_config, actual_seed)
    suffix = "" if n_scale == 1.0 and v_scale == 1.0 else f"@n{n_scale:g}v{v_scale:g}"
    return SpatialDataset(f"{entry.name}{suffix}", layer, world=entry.world)
