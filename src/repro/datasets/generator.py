"""Synthetic polygon generation.

The paper evaluates on real GIS layers (Wyoming land cover / ownership, US
state boundaries, precipitation zones, hydrography).  Those shapefiles are
not redistributable here, so this module generates synthetic stand-ins whose
*query-relevant* properties match: heavy-tailed vertex counts (Table 2),
irregular concave boundaries (Figure 1), and clustered spatial placement
(land-cover polygons form contiguous mosaics, so MBRs overlap heavily).

Construction: each polygon is a *star-shaped* ring around a center - a
radial function built from a random low-order Fourier series, sampled at
strictly increasing angles.  Star-shapedness guarantees simplicity while the
Fourier roughness produces the deep concavities visible in the paper's
Figure 1.  An optional fraction of "bowtie" twists produces the non-simple
polygons the paper's footnote 1 observes in real data.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional

from ..geometry.point import Point
from ..geometry.polygon import Polygon
from ..geometry.rect import Rect


@dataclass(frozen=True)
class VertexCountModel:
    """Heavy-tailed vertex-count distribution clipped to ``[vmin, vmax]``.

    A lognormal body reproduces the Table 2 pattern of small means with
    maxima two orders of magnitude larger (e.g. WATER: mean 91, max 39360).
    ``sigma`` controls tail weight; ``mu`` is solved so the un-clipped mean
    matches ``mean``.
    """

    vmin: int
    vmax: int
    mean: float
    sigma: float = 1.1
    #: Probability that a polygon is drawn from the extreme tail (log-uniform
    #: between 5x the mean and vmax).  Real GIS layers owe their Table-2
    #: maxima - 2-3 orders of magnitude above the mean - to a handful of
    #: digitized giants (state-sized shorelines, basin boundaries); a plain
    #: lognormal loses them entirely in scaled-down samples, and with them
    #: the expensive negative candidate pairs the refinement filters target.
    tail_fraction: float = 0.03

    def __post_init__(self) -> None:
        if not 3 <= self.vmin <= self.vmax:
            raise ValueError(f"need 3 <= vmin <= vmax, got {self.vmin}..{self.vmax}")
        if self.mean < self.vmin:
            raise ValueError(f"mean {self.mean} below vmin {self.vmin}")
        if not 0.0 <= self.tail_fraction < 1.0:
            raise ValueError(f"tail_fraction must be in [0, 1), got {self.tail_fraction}")

    def sample(self, rng: random.Random) -> int:
        tail_floor = 5.0 * self.mean
        if self.tail_fraction > 0.0 and self.vmax > tail_floor:
            if rng.random() < self.tail_fraction:
                n = int(round(math.exp(
                    rng.uniform(math.log(tail_floor), math.log(self.vmax))
                )))
                return max(self.vmin, min(self.vmax, n))
        mu = math.log(self.mean) - self.sigma**2 / 2.0
        n = int(round(rng.lognormvariate(mu, self.sigma)))
        return max(self.vmin, min(self.vmax, n))


def star_polygon(
    rng: random.Random,
    center: Point,
    mean_radius: float,
    n_vertices: int,
    roughness: float = 0.35,
    harmonics: int = 8,
) -> Polygon:
    """A simple, generally concave polygon star-shaped around ``center``.

    ``roughness`` in [0, ~0.45] scales the Fourier amplitudes; the radial
    function is clamped to stay positive so the ring never degenerates.
    """
    if n_vertices < 3:
        raise ValueError("polygon needs at least 3 vertices")
    if mean_radius <= 0.0:
        raise ValueError("mean_radius must be positive")
    k_count = min(max(2, n_vertices // 3), harmonics)
    amps = [
        roughness * rng.uniform(0.3, 1.0) / (k + 1) for k in range(k_count)
    ]
    phases = [rng.uniform(0.0, 2.0 * math.pi) for _ in range(k_count)]

    pts: List[Point] = []
    two_pi = 2.0 * math.pi
    for i in range(n_vertices):
        # Strictly increasing angles with bounded jitter keep the ring simple.
        theta = two_pi * (i + rng.uniform(-0.35, 0.35)) / n_vertices
        wobble = sum(
            a * math.cos((k + 2) * theta + ph)
            for k, (a, ph) in enumerate(zip(amps, phases))
        )
        r = mean_radius * max(0.15, 1.0 + wobble)
        pts.append(
            Point(center.x + r * math.cos(theta), center.y + r * math.sin(theta))
        )
    return Polygon(pts)


def _fractal_chain(
    p: Point, q: Point, budget: int, roughness: float, rng: random.Random
) -> List[Point]:
    """Fractal polyline from ``p`` (inclusive) to ``q`` (exclusive) with
    exactly ``budget`` interior points inserted by midpoint displacement."""
    if budget <= 0:
        return [p]
    dx, dy = q.x - p.x, q.y - p.y
    length = math.hypot(dx, dy)
    if length == 0.0:
        return [p] * (budget + 1)
    offset = rng.gauss(0.0, roughness * length * 0.5)
    limit = 0.4 * length
    offset = max(-limit, min(limit, offset))
    mid = Point(
        (p.x + q.x) * 0.5 - dy / length * offset,
        (p.y + q.y) * 0.5 + dx / length * offset,
    )
    interior = budget - 1
    l1 = p.distance_to(mid)
    l2 = mid.distance_to(q)
    b1 = round(interior * (l1 / (l1 + l2))) if (l1 + l2) > 0 else interior // 2
    b1 = max(0, min(interior, b1))
    return (
        _fractal_chain(p, mid, b1, roughness, rng)
        + _fractal_chain(mid, q, interior - b1, roughness, rng)
    )


def fractalize_polygon(
    polygon: Polygon, target_vertices: int, roughness: float, rng: random.Random
) -> Polygon:
    """Refine a polygon's boundary to ``target_vertices`` by midpoint
    displacement.

    Real shorelines and patch borders are fractal (dimension ~1.2-1.3):
    detail exists at every scale, producing deep bays and headlands.  The
    bays matter for query processing - objects of another layer sit inside
    them, creating candidate pairs whose common window is full of boundary
    edges while the geometries stay clearly apart: the expensive negatives
    the paper's hardware filter eliminates.

    The vertex budget is distributed over the base edges proportionally to
    their length, so detail density is uniform along the boundary; the
    result has exactly ``target_vertices`` vertices.
    """
    n = polygon.num_vertices
    if target_vertices <= n:
        return polygon
    verts = list(polygon.vertices)
    lengths = []
    for i in range(n):
        lengths.append(verts[i].distance_to(verts[(i + 1) % n]))
    total_len = sum(lengths) or 1.0
    extra = target_vertices - n
    budgets = [int(extra * (l / total_len)) for l in lengths]
    # Largest-remainder correction to hit the target exactly.
    shortfall = extra - sum(budgets)
    remainders = sorted(
        range(n),
        key=lambda i: (extra * lengths[i] / total_len) - budgets[i],
        reverse=True,
    )
    for k in range(shortfall):
        budgets[remainders[k % n]] += 1
    out: List[Point] = []
    for i in range(n):
        out.extend(
            _fractal_chain(
                verts[i], verts[(i + 1) % n], budgets[i], polygon_roughness(roughness), rng
            )
        )
    return Polygon(out)


def polygon_roughness(roughness: float) -> float:
    """Clamp boundary roughness to the range where rings stay mostly simple."""
    return max(0.0, min(roughness, 0.45))


def stretch_polygon(
    polygon: Polygon,
    rng: random.Random,
    median_elongation: float,
    angle: Optional[float] = None,
) -> Polygon:
    """Anisotropically stretch a polygon along a random axis.

    The polygon is scaled by ``lambda`` along a random direction and by
    ``1/lambda`` across it (area preserved), with ``lambda`` lognormal
    around ``median_elongation``.  A diagonal elongated shape leaves its
    axis-aligned MBR mostly empty, reproducing the low MBR fill ratios of
    real hydrography / parcel data.
    """
    if median_elongation <= 0.0:
        raise ValueError("elongation must be positive")
    lam = rng.lognormvariate(math.log(median_elongation), 0.35)
    lam = max(lam, 1.0)
    theta = angle if angle is not None else rng.uniform(0.0, math.pi)
    c, s = math.cos(theta), math.sin(theta)
    ctr = polygon.mbr.center
    out = []
    for p in polygon.vertices:
        x = p.x - ctr.x
        y = p.y - ctr.y
        u = (c * x + s * y) * lam
        v = (-s * x + c * y) / lam
        out.append(Point(ctr.x + c * u - s * v, ctr.y + s * u + c * v))
    return Polygon(out)


def bowtie_twist(polygon: Polygon, rng: random.Random) -> Polygon:
    """Swap two adjacent vertices to create a self-intersection.

    Models the non-simple polygons of the paper's footnote 1.  A swap in a
    locally concave stretch can leave the ring simple, so several positions
    are tried and the first twist that actually crosses is returned; all
    predicates in this library remain well-defined on the result (even-odd
    semantics).
    """
    verts = list(polygon.vertices)
    if len(verts) < 5:
        return polygon
    last_attempt = polygon
    for _ in range(8):
        i = rng.randrange(0, len(verts) - 1)
        twisted = list(verts)
        twisted[i], twisted[i + 1] = twisted[i + 1], twisted[i]
        last_attempt = Polygon(twisted)
        if not last_attempt.is_simple():
            return last_attempt
    return last_attempt


@dataclass(frozen=True)
class GeneratorConfig:
    """Layout parameters for one synthetic layer.

    ``coverage`` is the density knob: the mean polygon radius is
    ``extent * coverage / sqrt(count)``, so the expected fraction of the
    world covered by polygons is roughly ``pi * coverage^2`` *independent of
    count*.  Scaling a dataset down (fewer objects) therefore preserves the
    MBR-overlap rates that drive join selectivity - the property the paper's
    joins depend on (land-cover layers tile their extent).
    """

    world: Rect
    count: int
    vertex_model: VertexCountModel
    coverage: float = 1.0
    cluster_count: int = 24
    cluster_spread: float = 0.08
    roughness: float = 0.35
    #: Median anisotropy of the shapes.  Real GIS polygons - meandering
    #: shorelines, elongated land parcels - fill only a fraction of their
    #: MBR, which creates the "MBRs overlap but geometries are far apart"
    #: candidate pairs the refinement filters exist for.  1.0 = round blobs.
    elongation: float = 1.0
    #: Fraction of polygons whose stretch axis follows their cluster's
    #: shared orientation (terrain direction).  Real features align locally
    #: - parallel valleys, range-aligned climate bands, braided channels -
    #: producing side-by-side elongated neighbors: large overlap windows
    #: with many edges but clearly separated boundaries, the expensive
    #: negatives the hardware filter targets.  0.0 = independent angles.
    orientation_correlation: float = 0.0
    nonsimple_fraction: float = 0.0


def generate_layer(config: GeneratorConfig, seed: int) -> List[Polygon]:
    """Generate one clustered polygon layer (deterministic per seed)."""
    rng = random.Random(seed)
    world = config.world
    extent = min(world.width, world.height)
    base_radius = extent * config.coverage / math.sqrt(max(1, config.count))
    spread = extent * config.cluster_spread

    clusters = [
        (
            Point(
                rng.uniform(world.xmin, world.xmax),
                rng.uniform(world.ymin, world.ymax),
            ),
            rng.uniform(0.0, math.pi),  # the cluster's terrain direction
        )
        for _ in range(max(1, config.cluster_count))
    ]

    polygons: List[Polygon] = []
    for _ in range(config.count):
        n = config.vertex_model.sample(rng)
        c, cluster_angle = clusters[rng.randrange(len(clusters))]
        correlated = rng.random() < config.orientation_correlation
        if correlated:
            # Spread the cluster along its direction: parallel neighbors.
            du = rng.gauss(0.0, spread * 2.5)
            dv = rng.gauss(0.0, spread * 0.6)
            ca, sa = math.cos(cluster_angle), math.sin(cluster_angle)
            dx, dy = ca * du - sa * dv, sa * du + ca * dv
        else:
            dx, dy = rng.gauss(0.0, spread), rng.gauss(0.0, spread)
        center = Point(
            min(max(c.x + dx, world.xmin), world.xmax),
            min(max(c.y + dy, world.ymin), world.ymax),
        )
        # Feature size grows sublinearly with digitized vertex count
        # (shoreline detail scales with perimeter, not area) and is capped
        # so tail giants stay large-lake-sized rather than world-sized.
        size_factor = min((n / config.vertex_model.mean) ** 0.35, 2.5)
        radius = base_radius * size_factor * rng.lognormvariate(0.0, 0.4)
        radius = max(radius, extent * 1e-4)
        # Complex boundaries are built in two stages: a coarse star ring
        # for the overall shape, then fractal subdivision for shoreline
        # detail (deep bays and headlands at every scale).
        base_n = n if n <= 24 else max(12, min(48, 8 + n // 16))
        poly = star_polygon(rng, center, radius, base_n, config.roughness)
        if n > base_n:
            poly = fractalize_polygon(poly, n, config.roughness, rng)
        if config.elongation > 1.0:
            jitter = rng.gauss(0.0, 0.12)
            axis = (cluster_angle + jitter) if correlated else None
            # Vertex-rich features are rivers and coastlines: extremely
            # thin and meandering, so elongation grows with complexity.
            size_elongation = config.elongation * (
                n / config.vertex_model.mean
            ) ** 0.45
            poly = stretch_polygon(poly, rng, size_elongation, angle=axis)
        if config.nonsimple_fraction > 0.0 and rng.random() < config.nonsimple_fraction:
            poly = bowtie_twist(poly, rng)
        polygons.append(poly)
    return polygons
