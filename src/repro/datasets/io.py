"""Dataset serialization: a native text format plus WKT interop.

The native format is line-oriented and trivial to parse, so generated
datasets can be cached on disk and inspected:

    # repro-dataset v1
    name <dataset name>
    world <xmin> <ymin> <xmax> <ymax>
    poly <k> <x0> <y0> <x1> <y1> ... <xk-1> <yk-1>
    ...

WKT (Well-Known Text) ``POLYGON`` readers/writers are provided for
exchanging geometry with GIS tools - single exterior rings only, matching
this library's polygon model (the paper's datasets are simple rings too).
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Union

from ..geometry.point import Point
from ..geometry.polygon import Polygon
from ..geometry.rect import Rect
from .dataset import SpatialDataset

_HEADER = "# repro-dataset v1"


def save_dataset(dataset: SpatialDataset, path: Union[str, Path]) -> None:
    """Write ``dataset`` to ``path`` in the v1 text format."""
    path = Path(path)
    with path.open("w", encoding="ascii") as f:
        f.write(_HEADER + "\n")
        f.write(f"name {dataset.name}\n")
        w = dataset.world
        f.write(f"world {w.xmin!r} {w.ymin!r} {w.xmax!r} {w.ymax!r}\n")
        for poly in dataset.polygons:
            coords = " ".join(f"{p.x!r} {p.y!r}" for p in poly.vertices)
            f.write(f"poly {poly.num_vertices} {coords}\n")


def polygon_to_wkt(polygon: Polygon) -> str:
    """The polygon as a WKT ``POLYGON`` with one (closed) exterior ring."""
    ring = ", ".join(f"{p.x!r} {p.y!r}" for p in polygon.vertices)
    first = polygon.vertices[0]
    return f"POLYGON (({ring}, {first.x!r} {first.y!r}))"


def polygon_from_wkt(text: str) -> Polygon:
    """Parse a WKT ``POLYGON`` with a single exterior ring.

    The closing coordinate (WKT rings repeat the first point) is dropped;
    holes (additional rings) are rejected, as the polygon model has none.
    """
    body = text.strip()
    upper = body.upper()
    if not upper.startswith("POLYGON"):
        raise ValueError(f"not a WKT POLYGON: {body[:40]!r}...")
    inner = body[len("POLYGON"):].strip()
    if not (inner.startswith("((") and inner.endswith("))")):
        raise ValueError("malformed WKT POLYGON parentheses")
    rings = inner[2:-2].split("),")
    if len(rings) != 1:
        raise ValueError(
            f"POLYGON has {len(rings)} rings; holes are not supported"
        )
    pts = []
    for token in rings[0].split(","):
        parts = token.split()
        if len(parts) != 2:
            raise ValueError(f"malformed WKT coordinate {token.strip()!r}")
        pts.append(Point(float(parts[0]), float(parts[1])))
    if len(pts) >= 2 and pts[0] == pts[-1]:
        pts.pop()
    if len(pts) < 3:
        raise ValueError("WKT ring has fewer than 3 distinct points")
    return Polygon(pts)


def save_dataset_wkt(dataset: SpatialDataset, path: Union[str, Path]) -> None:
    """Write the dataset as one WKT POLYGON per line."""
    path = Path(path)
    with path.open("w", encoding="ascii") as f:
        for poly in dataset.polygons:
            f.write(polygon_to_wkt(poly) + "\n")


def load_dataset_wkt(
    path: Union[str, Path], name: Optional[str] = None
) -> SpatialDataset:
    """Read a dataset from one-WKT-POLYGON-per-line text."""
    path = Path(path)
    polygons: List[Polygon] = []
    with path.open("r", encoding="ascii") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                polygons.append(polygon_from_wkt(line))
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from exc
    if not polygons:
        raise ValueError(f"{path}: no polygons")
    return SpatialDataset(name if name is not None else path.stem, polygons)


def load_dataset(path: Union[str, Path]) -> SpatialDataset:
    """Read a dataset previously written by :func:`save_dataset`."""
    path = Path(path)
    name = path.stem
    world: Rect | None = None
    polygons: List[Polygon] = []
    with path.open("r", encoding="ascii") as f:
        first = f.readline().rstrip("\n")
        if first != _HEADER:
            raise ValueError(f"{path}: not a repro-dataset v1 file (got {first!r})")
        for lineno, line in enumerate(f, start=2):
            parts = line.split()
            if not parts:
                continue
            tag = parts[0]
            if tag == "name":
                name = parts[1] if len(parts) > 1 else name
            elif tag == "world":
                if len(parts) != 5:
                    raise ValueError(f"{path}:{lineno}: malformed world line")
                world = Rect(*(float(v) for v in parts[1:]))
            elif tag == "poly":
                k = int(parts[1])
                values = parts[2:]
                if len(values) != 2 * k:
                    raise ValueError(
                        f"{path}:{lineno}: expected {2 * k} coordinates, "
                        f"got {len(values)}"
                    )
                pts = [
                    Point(float(values[2 * i]), float(values[2 * i + 1]))
                    for i in range(k)
                ]
                polygons.append(Polygon(pts))
            else:
                raise ValueError(f"{path}:{lineno}: unknown record {tag!r}")
    if not polygons:
        raise ValueError(f"{path}: dataset contains no polygons")
    return SpatialDataset(name, polygons, world=world)
