"""Datasets: synthetic stand-ins for the paper's five GIS layers.

See DESIGN.md section 2 for the substitution rationale: the experiments
depend on the datasets only through polygon complexity, spatial clustering,
and boundary irregularity, all of which the generators match (Table 2
statistics) at configurable scale.
"""

from .catalog import CATALOG, CONUS, WYOMING, CatalogEntry, dataset_names, load
from .dataset import DatasetStats, SpatialDataset, base_distance
from .generator import (
    GeneratorConfig,
    VertexCountModel,
    bowtie_twist,
    generate_layer,
    star_polygon,
)
from .io import (
    load_dataset,
    load_dataset_wkt,
    polygon_from_wkt,
    polygon_to_wkt,
    save_dataset,
    save_dataset_wkt,
)

__all__ = [
    "CATALOG",
    "CONUS",
    "CatalogEntry",
    "DatasetStats",
    "GeneratorConfig",
    "SpatialDataset",
    "VertexCountModel",
    "WYOMING",
    "base_distance",
    "bowtie_twist",
    "dataset_names",
    "generate_layer",
    "load",
    "load_dataset",
    "load_dataset_wkt",
    "polygon_from_wkt",
    "polygon_to_wkt",
    "save_dataset",
    "save_dataset_wkt",
    "star_polygon",
]
