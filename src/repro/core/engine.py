"""Refinement engines: pluggable geometry-comparison back ends.

The query pipelines (:mod:`repro.query`) take an engine object and call it
for every candidate pair that survives filtering.  Two engines implement the
paper's comparison:

* :class:`SoftwareEngine` - the reference algorithms (restricted plane
  sweep; frontier-chain minDist);
* :class:`HardwareEngine` - Algorithm 3.1 and its distance extension,
  backed by one simulated graphics pipeline per engine instance.

Both engines accumulate :class:`~repro.core.stats.RefinementStats` so
experiments can report work distribution alongside wall-clock time.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, List, Optional, Protocol, Sequence, Tuple

from ..cache import CacheBundle, CacheConfig, default_cache_config
from ..geometry.min_dist import MinDistStats
from ..geometry.polygon import Polygon
from ..geometry.sweep import SweepStats
from .batch import refine_pairs_batched
from .config import HardwareConfig
from .containment import hybrid_contains_properly, software_contains_properly
from .distance import hybrid_within_distance, software_within_distance
from .hardware_test import HardwareSegmentTest
from .intersection import hybrid_polygons_intersect, software_polygons_intersect
from .stats import RefinementStats


class RefinementEngine(Protocol):
    """What the query pipelines require of a geometry-comparison back end."""

    name: str
    stats: RefinementStats

    def polygons_intersect(self, a: Polygon, b: Polygon) -> bool:
        """Exact intersection predicate."""
        ...

    def within_distance(self, a: Polygon, b: Polygon, d: float) -> bool:
        """Exact within-distance predicate."""
        ...

    def contains_properly(self, a: Polygon, b: Polygon) -> bool:
        """Exact proper-containment predicate (simple container ``a``)."""
        ...

    def reset_stats(self) -> None:
        ...


class SoftwareEngine:
    """Software-only refinement (the paper's baseline algorithms)."""

    #: No fixed per-test overhead to amortize: the software engine gains
    #: nothing from batching, so pipelines keep their per-pair loop.
    supports_batch = False

    def __init__(
        self,
        restrict_search_space: bool = True,
        cache: Optional[CacheConfig] = None,
    ) -> None:
        self.name = "software"
        self.restrict_search_space = restrict_search_space
        self.stats = RefinementStats()
        self.sweep_stats = SweepStats()
        self.mindist_stats = MinDistStats()
        #: Resolved once at construction (``None`` reads the process
        #: default), so sharded workers rebuilt from a pickled spec can
        #: never disagree with their coordinator.
        self.cache_config = cache if cache is not None else default_cache_config()
        self.caches = CacheBundle(self.cache_config)

    def polygons_intersect(self, a: Polygon, b: Polygon) -> bool:
        return software_polygons_intersect(
            a,
            b,
            stats=self.stats,
            sweep_stats=self.sweep_stats,
            restrict_search_space=self.restrict_search_space,
            cache=self.caches.predicate,
        )

    def within_distance(self, a: Polygon, b: Polygon, d: float) -> bool:
        return software_within_distance(
            a,
            b,
            d,
            stats=self.stats,
            mindist_stats=self.mindist_stats,
            cache=self.caches.predicate,
        )

    def contains_properly(self, a: Polygon, b: Polygon) -> bool:
        return software_contains_properly(
            a,
            b,
            stats=self.stats,
            sweep_stats=self.sweep_stats,
            cache=self.caches.predicate,
        )

    def reset_stats(self) -> None:
        self.stats.reset()
        self.sweep_stats = SweepStats()
        self.mindist_stats = MinDistStats()

    def reset_caches(self) -> None:
        """Drop all memoized entries and tallies (configuration kept)."""
        self.caches.reset()


class HardwareEngine:
    """Hardware-assisted refinement (Algorithm 3.1 + distance extension)."""

    #: The hardware engine amortizes its fixed per-test overhead by packing
    #: many pair tests into one atlas submission; pipelines that see this
    #: flag hand the engine whole candidate batches via :meth:`refine_batch`.
    supports_batch = True

    def __init__(self, config: Optional[HardwareConfig] = None) -> None:
        config = config if config is not None else HardwareConfig()
        if config.cache is None:
            # Pin the process default into the config so the engine (and any
            # worker rebuilt from its pickled config) has one resolved cache
            # behavior for its whole lifetime.
            config = replace(config, cache=default_cache_config())
        self.config = config
        self.name = f"hardware[{self.config.resolution}x{self.config.resolution}]"
        self.hw = HardwareSegmentTest(self.config)
        self.caches = self.hw.caches
        self.stats = RefinementStats()
        self.sweep_stats = SweepStats()
        self.mindist_stats = MinDistStats()

    @property
    def gpu_counters(self):
        """Primitive-operation counters of the underlying pipeline."""
        return self.hw.pipeline.counters

    def polygons_intersect(self, a: Polygon, b: Polygon) -> bool:
        return hybrid_polygons_intersect(
            a,
            b,
            self.hw,
            stats=self.stats,
            sweep_stats=self.sweep_stats,
            cache=self.caches.predicate,
        )

    def within_distance(self, a: Polygon, b: Polygon, d: float) -> bool:
        return hybrid_within_distance(
            a,
            b,
            d,
            self.hw,
            stats=self.stats,
            mindist_stats=self.mindist_stats,
            cache=self.caches.predicate,
        )

    def contains_properly(self, a: Polygon, b: Polygon) -> bool:
        return hybrid_contains_properly(
            a,
            b,
            self.hw,
            stats=self.stats,
            sweep_stats=self.sweep_stats,
            cache=self.caches.predicate,
        )

    def refine_batch(
        self,
        op: str,
        items: Sequence[Tuple[Any, Polygon, Polygon]],
        distance: Optional[float] = None,
    ) -> List[Any]:
        """Refine a whole candidate batch with batched hardware tests.

        ``op`` is ``"intersect"``, ``"within_distance"`` (requires
        ``distance``), or ``"contains"``; ``items`` are ``(key, a, b)``
        work units.  Returns the keys of matching pairs in item order.
        Decisions and accumulated statistics are bit-identical to calling
        the corresponding per-pair predicate over ``items`` in order -
        only the number of hardware submissions (and therefore the fixed
        per-test overhead) changes.
        """
        return refine_pairs_batched(
            self.hw,
            op,
            items,
            distance=distance,
            stats=self.stats,
            sweep_stats=self.sweep_stats,
            mindist_stats=self.mindist_stats,
            predicate_cache=self.caches.predicate,
        )

    def reset_stats(self) -> None:
        self.stats.reset()
        self.sweep_stats = SweepStats()
        self.mindist_stats = MinDistStats()
        self.gpu_counters.reset()

    def reset_caches(self) -> None:
        """Drop all memoized entries and tallies (configuration kept)."""
        self.caches.reset()


def make_engine(
    kind: str, config: Optional[HardwareConfig] = None
) -> RefinementEngine:
    """Factory: ``"software"`` or ``"hardware"`` (with optional config).

    A :class:`HardwareConfig` only parameterizes the hardware engine;
    supplying one with ``kind="software"`` is a configuration error (the
    run would silently measure the default software path), so it raises.
    """
    if kind == "software":
        if config is not None:
            raise ValueError(
                "make_engine('software') does not accept a HardwareConfig; "
                "the software engine has no hardware parameters"
            )
        return SoftwareEngine()
    if kind == "hardware":
        return HardwareEngine(config)
    raise ValueError(f"unknown engine kind {kind!r}; expected software|hardware")
