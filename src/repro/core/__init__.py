"""The paper's contribution: hardware-assisted refinement tests.

Algorithm 3.1 (hybrid intersection test), its within-distance extension,
the projection strategies of section 3.2, the ``sw_threshold`` adaptation of
section 4.3, and the engine abstraction the query pipelines plug into.
"""

from .batch import BATCH_OPS, refine_pairs_batched
from .config import OVERLAP_METHODS, OVERLAP_THRESHOLD, HardwareConfig
from .containment import hybrid_contains_properly, software_contains_properly
from .distance import hybrid_within_distance, software_within_distance
from .engine import HardwareEngine, RefinementEngine, SoftwareEngine, make_engine
from .hardware_test import HardwareSegmentTest, HardwareVerdict
from .intersection import hybrid_polygons_intersect, software_polygons_intersect
from .platform import PLATFORM_2003, Platform2003
from .projection import distance_window, intersection_window, union_window
from .stats import RefinementStats

__all__ = [
    "BATCH_OPS",
    "HardwareConfig",
    "HardwareEngine",
    "HardwareSegmentTest",
    "HardwareVerdict",
    "OVERLAP_METHODS",
    "OVERLAP_THRESHOLD",
    "PLATFORM_2003",
    "Platform2003",
    "RefinementEngine",
    "RefinementStats",
    "SoftwareEngine",
    "distance_window",
    "hybrid_contains_properly",
    "hybrid_polygons_intersect",
    "hybrid_within_distance",
    "intersection_window",
    "make_engine",
    "refine_pairs_batched",
    "software_contains_properly",
    "software_polygons_intersect",
    "software_within_distance",
    "union_window",
]
