"""Proper-containment tests: is polygon ``b`` strictly inside polygon ``a``?

Table 1 lists the interior filter's query types as "Intersection and
Containment"; this module supplies the containment predicate and its
hardware acceleration.  The predicate is *proper* containment - ``b`` lies
in the open interior of ``a``, boundaries disjoint - which is exactly what
the interior filter's tiles certify and what map-overlay containment
queries ("parcels entirely within the flood zone") ask for.

For a simple container polygon the predicate decomposes exactly:

    contains_properly(a, b)  <=>  b.v0 inside a  AND  boundaries disjoint

(b's boundary cannot leave ``a``'s interior without crossing ``a``'s
boundary, and with ``a`` simple, ``a``'s boundary cannot wander into ``b``'s
region without crossing back out through ``b``'s boundary.)

The hardware upgrade is special here: for intersection tests a clean miss
only *rules out*; for containment a clean miss **confirms** - PIP already
established ``b.v0`` inside, and a DISJOINT verdict proves the boundaries
never meet, so the pair is contained with *no software sweep at all*.  The
sweep only runs for MAYBE verdicts.
"""

from __future__ import annotations

from typing import Optional

from ..cache import PredicateCache
from ..geometry.point_in_polygon import PointLocation, locate_point
from ..geometry.polygon import Polygon
from ..geometry.sweep import SweepStats
from .hardware_test import HardwareSegmentTest, HardwareVerdict
from .intersection import _sweep_decision
from .projection import intersection_window
from .stats import RefinementStats


def software_contains_properly(
    a: Polygon,
    b: Polygon,
    stats: Optional[RefinementStats] = None,
    sweep_stats: Optional[SweepStats] = None,
    cache: Optional[PredicateCache] = None,
) -> bool:
    """Software test: ``b`` strictly inside ``a`` (simple container ``a``)."""
    if stats is not None:
        stats.pairs_tested += 1
    if not a.mbr.contains_rect(b.mbr):
        if stats is not None:
            stats.prefilter_drops += 1
        return False
    if stats is not None:
        stats.pip_edges += a.num_vertices
    if locate_point(b.vertices[0], a.vertices) is not PointLocation.INSIDE:
        if stats is not None:
            stats.prefilter_drops += 1
        return False
    if stats is not None:
        stats.sw_segment_tests += 1
    result = not _sweep_decision(a, b, True, sweep_stats, cache)
    if result and stats is not None:
        stats.positives += 1
    return result


def hybrid_contains_properly(
    a: Polygon,
    b: Polygon,
    hw: HardwareSegmentTest,
    stats: Optional[RefinementStats] = None,
    sweep_stats: Optional[SweepStats] = None,
    cache: Optional[PredicateCache] = None,
) -> bool:
    """Hardware-assisted containment: a DISJOINT verdict *confirms*.

    Exactly equivalent to :func:`software_contains_properly`; the work
    distribution differs - and unlike the intersection test, here the
    hardware resolves *positives* without software help.
    """
    if stats is not None:
        stats.pairs_tested += 1
    if not a.mbr.contains_rect(b.mbr):
        if stats is not None:
            stats.prefilter_drops += 1
        return False
    if stats is not None:
        stats.pip_edges += a.num_vertices
    if locate_point(b.vertices[0], a.vertices) is not PointLocation.INSIDE:
        if stats is not None:
            stats.prefilter_drops += 1
        return False

    hw_maybe = False
    if hw.config.use_hardware_for(a.num_vertices + b.num_vertices):
        window = intersection_window(a.mbr, b.mbr)
        assert window is not None  # a.mbr contains b.mbr
        if stats is not None:
            stats.hw_tests += 1
        if hw.intersection_verdict(a, b, window) is HardwareVerdict.DISJOINT:
            # Boundaries provably never meet + v0 inside: contained.
            if stats is not None:
                stats.hw_rejects += 1
                stats.positives += 1
            return True
        hw_maybe = True
    elif stats is not None:
        stats.threshold_bypasses += 1

    if stats is not None:
        stats.sw_segment_tests += 1
    result = not _sweep_decision(a, b, True, sweep_stats, cache)
    if stats is not None and result:
        stats.positives += 1
        if hw_maybe:
            # MAYBE, yet the sweep found no boundary crossing: the overlap
            # filter's false positive (shared pixel, no actual crossing).
            stats.hw_false_positives += 1
    return result
