"""Modeled execution time on the paper's 2003 platform (dual-clock method).

The hardware side of this reproduction is a *simulator*: a massively
parallel rasterizer executed serially in interpreted Python.  Raw host
wall-clock therefore misstates the comparison the paper makes - it charges
the GPU for Python overhead while crediting the CPU algorithms with a
like-for-like implementation.  Following standard architecture-simulation
practice, the library keeps **two clocks**:

* *wall-clock* - honest host seconds, reported by every experiment; and
* *modeled time* - deterministic operation counts (both sides are fully
  instrumented) multiplied by per-operation costs calibrated to the paper's
  platform: an AMD AthlonXP 1800+ running compiled C++ geometry code, and an
  NVIDIA GeForce4 Ti4600 behind a 2003-era OpenGL driver.

The calibration constants below are era estimates, set once and used for
every experiment (no per-experiment tuning): CPU constants from cycle
estimates of the inner loops at ~1.5 GHz, GPU constants from the card's
published fill/vertex rates and typical AGP-era driver overheads.
EXPERIMENTS.md reports both clocks for every figure; the paper's cost
*shapes* are evaluated on modeled time, which is what the substitution in
DESIGN.md section 2 promises.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..geometry.min_dist import MinDistStats
from ..geometry.sweep import SweepStats
from ..gpu.costmodel import CostCounters
from .stats import RefinementStats


@dataclass(frozen=True)
class Platform2003:
    """Per-operation costs in microseconds on the paper's testbed."""

    # -- CPU (AthlonXP 1800+, compiled geometry code) -------------------
    #: Point-in-polygon: one edge of the crossing scan (~12 cycles).
    cpu_pip_edge_us: float = 0.008
    #: Per edge merely *scanned* by the refinement step (restriction
    #: filtering, edge flattening): the CPU must touch every vertex of both
    #: polygons before it can sweep anything - work the hardware path
    #: offloads to the GPU's transform stage (~60 cycles).
    cpu_scan_edge_us: float = 0.04
    #: Plane sweep: per edge admitted to the sweep (event-queue build).
    cpu_sweep_build_us: float = 0.15
    #: Plane sweep: per edge whose events are actually consumed (status
    #: maintenance in the balanced tree, neighbor bookkeeping) - the
    #: constant the paper's O((n+m) log(n+m)) hides (~1800 cycles).  An
    #: early-exiting sweep only pays it up to the first crossing.
    cpu_sweep_edge_us: float = 1.2
    #: One exact segment-pair intersection test (~150 cycles).
    cpu_segment_test_us: float = 0.1
    #: minDist: per edge of the linear passes (flatten, initial bound,
    #: frontier filtering).
    cpu_mindist_edge_us: float = 0.1
    #: One segment-segment distance evaluation (sqrt + clamping).
    cpu_mindist_pair_us: float = 0.15
    #: Fixed per-pair refinement dispatch (geometry fetch from the buffer
    #: pool, function call overhead).
    cpu_pair_dispatch_us: float = 0.5

    # -- GPU (GeForce4 Ti4600 + 2003 OpenGL driver) -----------------------
    #: Driver + command submission per draw call.
    gpu_draw_call_us: float = 1.5
    #: Per edge: vertex transform + AA line setup (GeForce4 Ti4600:
    #: 136M vertices/s published T&L rate).
    gpu_edge_us: float = 0.0075
    #: Per pixel actually covered by AA line rasterization.
    gpu_pixel_write_us: float = 0.004
    #: Per pixel of a buffer clear (fast path).
    gpu_clear_pixel_us: float = 0.0008
    #: Per pixel of a glAccum transfer (accumulation was a slow path on
    #: consumer cards).
    gpu_accum_pixel_us: float = 0.002
    #: Per pixel scanned by the Minmax extension (on-card block move).
    gpu_minmax_pixel_us: float = 0.003
    #: Per pixel transferred to host memory by glReadPixels (AGP readback
    #: was notoriously slow: tens of MB/s).
    gpu_readback_pixel_us: float = 0.12
    #: Latency per readback request (bus turnaround + driver sync).
    gpu_readback_latency_us: float = 60.0
    #: Per pixel of a distance-field construction pass (depth-cone
    #: rendering per Hoff et al. [12]: a handful of overdraw layers).
    gpu_distance_field_pixel_us: float = 0.02

    # -- CPU-side model -------------------------------------------------------

    def software_seconds(
        self,
        stats: RefinementStats,
        sweep: SweepStats,
        mindist: MinDistStats,
    ) -> float:
        """Modeled CPU time of the counted software refinement work."""
        us = (
            stats.pairs_tested * self.cpu_pair_dispatch_us
            + stats.pip_edges * self.cpu_pip_edge_us
            + sweep.edges_considered * self.cpu_scan_edge_us
            + sweep.edges_after_restriction * self.cpu_sweep_build_us
            + sweep.edges_processed * self.cpu_sweep_edge_us
            + sweep.candidate_tests * self.cpu_segment_test_us
            + mindist.edges_scanned * self.cpu_mindist_edge_us
            + mindist.pairs_tested * self.cpu_mindist_pair_us
        )
        return us * 1e-6

    # -- GPU-side model ---------------------------------------------------------

    def hardware_seconds(self, counters: CostCounters) -> float:
        """Modeled GPU+driver time of the counted rendering work."""
        us = (
            counters.draw_calls * self.gpu_draw_call_us
            # Every submitted edge is transformed, including those the
            # clipping stage then discards.
            + (counters.edges_rendered + counters.edges_clipped_away)
            * self.gpu_edge_us
            + counters.pixels_written * self.gpu_pixel_write_us
            + counters.pixels_cleared * self.gpu_clear_pixel_us
            + counters.accum_ops * 0.0  # per-op cost folded into pixels
            + counters.pixels_scanned * self.gpu_minmax_pixel_us
            + counters.distance_field_pixels * self.gpu_distance_field_pixel_us
            + counters.pixels_transferred * self.gpu_readback_pixel_us
            + counters.readback_ops * self.gpu_readback_latency_us
        )
        # glAccum moves every pixel of the buffer per operation.
        if counters.accum_ops and counters.buffer_clears:
            pixels_per_buffer = counters.pixels_cleared / counters.buffer_clears
            us += counters.accum_ops * pixels_per_buffer * self.gpu_accum_pixel_us
        return us * 1e-6

    # -- combined ------------------------------------------------------------------

    def engine_seconds(self, engine) -> float:
        """Modeled refinement time of everything an engine has executed.

        Works for both engine types: the software engine has no GPU
        counters; the hardware engine adds its rendering work to the
        software work it still performs (PIP, surviving sweeps/minDists).
        """
        total = self.software_seconds(
            engine.stats, engine.sweep_stats, engine.mindist_stats
        )
        gpu = getattr(engine, "gpu_counters", None)
        if gpu is not None:
            total += self.hardware_seconds(gpu)
        return total


#: The default calibration used by all experiments.
PLATFORM_2003 = Platform2003()
