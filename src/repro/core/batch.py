"""Batched hybrid refinement: one hardware submission for many pairs.

The serial hybrid tests (:mod:`.intersection`, :mod:`.distance`,
:mod:`.containment`) interleave their software steps with one hardware
round-trip *per pair*, paying the fixed per-test overhead - the very
overhead ``sw_threshold`` exists to dodge (section 4.3) - once per
candidate.  This module runs the same three-step pipelines over a whole
candidate batch instead:

1. the software prefilters (MBR, point-in-polygon / containment witness)
   run per pair, exactly as the serial code does;
2. every pair that would have called the hardware is collected and decided
   by **one** batched atlas submission
   (:meth:`~.hardware_test.HardwareSegmentTest.intersection_verdicts_batch` /
   :meth:`~.hardware_test.HardwareSegmentTest.distance_verdicts_batch`);
3. the software fallback (plane sweep / minDist) runs per surviving pair.

Every per-pair decision and every :class:`~.stats.RefinementStats`
increment matches the serial loop exactly - the counters are additive over
pairs and batching only reorders when they happen, never whether.  The
same holds for the sweep and minDist work counters.  Each hardware batch
is visible as a ``geometry.hw_batch`` span on the installed tracer (plus
the per-submission ``gpu.tile_batch`` spans underneath).
"""

from __future__ import annotations

import time
from typing import Any, List, Optional, Sequence, Tuple

from ..cache import PredicateCache
from ..geometry.distance import either_contains
from ..geometry.min_dist import MinDistStats
from ..geometry.point_in_polygon import PointLocation, locate_point
from ..geometry.polygon import Polygon
from ..geometry.sweep import SweepStats
from .distance import _mindist_decision
from .hardware_test import HardwareSegmentTest, HardwareVerdict, PairWindow
from .intersection import _point_in_polygon_step, _sweep_decision
from .projection import distance_window, intersection_window
from .stats import RefinementStats

#: One unit of batched work: an opaque result key plus the two polygons.
BatchItem = Tuple[Any, Polygon, Polygon]

#: The predicates `refine_pairs_batched` evaluates.
BATCH_OPS = ("intersect", "within_distance", "contains")


def refine_pairs_batched(
    hw: HardwareSegmentTest,
    op: str,
    items: Sequence[BatchItem],
    distance: Optional[float] = None,
    stats: Optional[RefinementStats] = None,
    sweep_stats: Optional[SweepStats] = None,
    mindist_stats: Optional[MinDistStats] = None,
    restrict_search_space: bool = True,
    predicate_cache: Optional[PredicateCache] = None,
) -> List[Any]:
    """Refine ``items`` with batched hardware tests; return matching keys.

    Keys return in item order.  Results and statistics are bit-identical
    to running the corresponding serial hybrid test over the same items in
    the same order.
    """
    if op == "intersect":
        decisions = _batched_intersect(
            hw, items, stats, sweep_stats, restrict_search_space,
            predicate_cache,
        )
    elif op == "within_distance":
        if distance is None:
            raise ValueError("op 'within_distance' requires a distance")
        decisions = _batched_within_distance(
            hw, items, distance, stats, mindist_stats, predicate_cache
        )
    elif op == "contains":
        decisions = _batched_contains(
            hw, items, stats, sweep_stats, predicate_cache
        )
    else:
        raise ValueError(f"unknown op {op!r}; expected one of {BATCH_OPS}")
    return [item[0] for item, hit in zip(items, decisions) if hit]


def _traced_verdicts(hw, op: str, pairs: List[PairWindow], d=None):
    """Run one batched hardware call, recording a ``geometry.hw_batch`` span."""
    from ..exec.trace import current_tracer

    start = time.perf_counter()
    if op == "within_distance":
        verdicts = hw.distance_verdicts_batch(pairs, d)
    else:
        verdicts = hw.intersection_verdicts_batch(pairs)
    tracer = current_tracer()
    if tracer is not None:
        tracer.record(
            "geometry.hw_batch",
            time.perf_counter() - start,
            op=op,
            pairs=len(pairs),
        )
    return verdicts


def _batched_intersect(
    hw: HardwareSegmentTest,
    items: Sequence[BatchItem],
    stats: Optional[RefinementStats],
    sweep_stats: Optional[SweepStats],
    restrict_search_space: bool,
    predicate_cache: Optional[PredicateCache] = None,
) -> List[bool]:
    """Algorithm 3.1 over a batch (mirrors ``hybrid_polygons_intersect``)."""
    decisions = [False] * len(items)
    hw_idx: List[int] = []
    hw_pairs: List[PairWindow] = []
    sweep_idx: List[int] = []
    hw_maybe: set = set()
    for k, (_, a, b) in enumerate(items):
        if stats is not None:
            stats.pairs_tested += 1
        window = intersection_window(a.mbr, b.mbr)
        if window is None:
            if stats is not None:
                stats.prefilter_drops += 1
            continue
        if _point_in_polygon_step(a, b, stats):
            if stats is not None:
                stats.pip_hits += 1
                stats.positives += 1
            decisions[k] = True
            continue
        if hw.config.use_hardware_for(a.num_vertices + b.num_vertices):
            if stats is not None:
                stats.hw_tests += 1
            hw_idx.append(k)
            hw_pairs.append((a, b, window))
        else:
            if stats is not None:
                stats.threshold_bypasses += 1
            sweep_idx.append(k)

    if hw_pairs:
        for k, verdict in zip(
            hw_idx, _traced_verdicts(hw, "intersect", hw_pairs)
        ):
            if verdict is HardwareVerdict.DISJOINT:
                if stats is not None:
                    stats.hw_rejects += 1
            else:
                hw_maybe.add(k)
                sweep_idx.append(k)

    for k in sweep_idx:
        _, a, b = items[k]
        if stats is not None:
            stats.sw_segment_tests += 1
        result = _sweep_decision(
            a, b, restrict_search_space, sweep_stats, predicate_cache
        )
        if stats is not None:
            if result:
                stats.positives += 1
            elif k in hw_maybe:
                stats.hw_false_positives += 1
        decisions[k] = result
    return decisions


def _batched_within_distance(
    hw: HardwareSegmentTest,
    items: Sequence[BatchItem],
    d: float,
    stats: Optional[RefinementStats],
    mindist_stats: Optional[MinDistStats],
    predicate_cache: Optional[PredicateCache] = None,
) -> List[bool]:
    """Batched within-distance (mirrors ``hybrid_within_distance``)."""
    if d < 0.0:
        raise ValueError("distance must be non-negative")
    decisions = [False] * len(items)
    hw_idx: List[int] = []
    hw_pairs: List[PairWindow] = []
    soft_idx: List[int] = []
    hw_maybe: set = set()
    for k, (_, a, b) in enumerate(items):
        if stats is not None:
            stats.pairs_tested += 1
        if not a.mbr.within_distance(b.mbr, d):
            if stats is not None:
                stats.prefilter_drops += 1
            continue
        if stats is not None and a.mbr.intersects(b.mbr):
            if b.mbr.contains_point(a.vertices[0]):
                stats.pip_edges += b.num_vertices
            if a.mbr.contains_point(b.vertices[0]):
                stats.pip_edges += a.num_vertices
        if a.mbr.intersects(b.mbr) and either_contains(a, b):
            if stats is not None:
                stats.pip_hits += 1
                stats.positives += 1
            decisions[k] = True
            continue
        if hw.config.use_hardware_for(a.num_vertices + b.num_vertices):
            window = distance_window(a.mbr, b.mbr, d)
            if stats is not None:
                stats.hw_tests += 1
            hw_idx.append(k)
            hw_pairs.append((a, b, window))
        else:
            if stats is not None:
                stats.threshold_bypasses += 1
            soft_idx.append(k)

    if hw_pairs:
        for k, verdict in zip(
            hw_idx, _traced_verdicts(hw, "within_distance", hw_pairs, d)
        ):
            if verdict is HardwareVerdict.DISJOINT:
                if stats is not None:
                    stats.hw_rejects += 1
                continue
            if verdict is HardwareVerdict.UNSUPPORTED:
                if stats is not None:
                    stats.width_limit_fallbacks += 1
            else:
                hw_maybe.add(k)
            soft_idx.append(k)

    for k in soft_idx:
        _, a, b = items[k]
        if stats is not None:
            stats.sw_distance_tests += 1
        result = _mindist_decision(a, b, d, mindist_stats, predicate_cache)
        if stats is not None:
            if result:
                stats.positives += 1
            elif k in hw_maybe:
                stats.hw_false_positives += 1
        decisions[k] = result
    return decisions


def _batched_contains(
    hw: HardwareSegmentTest,
    items: Sequence[BatchItem],
    stats: Optional[RefinementStats],
    sweep_stats: Optional[SweepStats],
    predicate_cache: Optional[PredicateCache] = None,
) -> List[bool]:
    """Batched proper containment (mirrors ``hybrid_contains_properly``).

    As in the serial test, a DISJOINT verdict *confirms*: the PIP witness
    already placed ``b`` inside ``a``, so provably disjoint boundaries
    mean containment with no sweep at all.
    """
    decisions = [False] * len(items)
    hw_idx: List[int] = []
    hw_pairs: List[PairWindow] = []
    sweep_idx: List[int] = []
    hw_maybe: set = set()
    for k, (_, a, b) in enumerate(items):
        if stats is not None:
            stats.pairs_tested += 1
        if not a.mbr.contains_rect(b.mbr):
            if stats is not None:
                stats.prefilter_drops += 1
            continue
        if stats is not None:
            stats.pip_edges += a.num_vertices
        if locate_point(b.vertices[0], a.vertices) is not PointLocation.INSIDE:
            if stats is not None:
                stats.prefilter_drops += 1
            continue
        if hw.config.use_hardware_for(a.num_vertices + b.num_vertices):
            window = intersection_window(a.mbr, b.mbr)
            assert window is not None  # a.mbr contains b.mbr
            if stats is not None:
                stats.hw_tests += 1
            hw_idx.append(k)
            hw_pairs.append((a, b, window))
        else:
            if stats is not None:
                stats.threshold_bypasses += 1
            sweep_idx.append(k)

    if hw_pairs:
        for k, verdict in zip(
            hw_idx, _traced_verdicts(hw, "contains", hw_pairs)
        ):
            if verdict is HardwareVerdict.DISJOINT:
                if stats is not None:
                    stats.hw_rejects += 1
                    stats.positives += 1
                decisions[k] = True
            else:
                hw_maybe.add(k)
                sweep_idx.append(k)

    for k in sweep_idx:
        _, a, b = items[k]
        if stats is not None:
            stats.sw_segment_tests += 1
        result = not _sweep_decision(a, b, True, sweep_stats, predicate_cache)
        if stats is not None and result:
            stats.positives += 1
            if k in hw_maybe:
                stats.hw_false_positives += 1
        decisions[k] = result
    return decisions
