"""Algorithm 3.1: the hardware-assisted polygon intersection test.

The hybrid test keeps the cheap, cache-friendly parts in software and
inserts the hardware rendering test as a refinement-stage filter:

1. *software point-in-polygon* (``O(n + m)``) - answers positively for
   overlapping interiors and for containment, the case the hardware cannot
   see (contained boundaries share no pixels);
2. *hardware segment intersection test* - renders both boundaries into the
   window of Figure 7a and searches for overlapping pixels; a clean miss
   **proves** the boundaries are disjoint, and combined with step 1's
   negative result proves the polygons are disjoint;
3. *software segment intersection test* - the plane sweep with restricted
   search space, run only for pairs the hardware could not rule out.

Pairs with ``n + m <= sw_threshold`` skip step 2 (section 4.3): for simple
geometry the fixed per-test hardware overhead exceeds the sweep cost.
"""

from __future__ import annotations

from typing import Optional

from ..cache import PredicateCache
from ..geometry.point_in_polygon import PointLocation, locate_point
from ..geometry.polygon import Polygon
from ..geometry.sweep import SweepStats, boundaries_intersect
from .hardware_test import HardwareSegmentTest, HardwareVerdict
from .projection import intersection_window
from .stats import RefinementStats


def _sweep_decision(
    a: Polygon,
    b: Polygon,
    restrict: bool,
    sweep_stats: Optional[SweepStats],
    cache: Optional[PredicateCache] = None,
) -> bool:
    """The plane-sweep boolean, memoized by polygon content when asked.

    ``boundaries_intersect`` is a pure function of (a, b, restrict) - the
    ``restrict`` flag changes work, never the answer, but it is part of the
    key anyway so the cache never equates differently-configured runs.
    On a hit the sweep does not run, so ``sweep_stats`` receives nothing;
    the caller's RefinementStats bookkeeping (a *decision* count) is
    untouched either way.  Shared by the intersection and containment
    predicates, which ask the identical question.
    """
    if cache is None:
        return boundaries_intersect(a, b, restrict, sweep_stats)
    return cache.memo(
        "sweep",
        (a.digest, b.digest, bool(restrict)),
        lambda: boundaries_intersect(a, b, restrict, sweep_stats),
    )


def _point_in_polygon_step(
    a: Polygon, b: Polygon, stats: Optional[RefinementStats] = None
) -> bool:
    """Algorithm 3.1 step 1, applied in both directions.

    Testing one vertex of each polygon against the other catches both
    containment directions; boundary contact counts as intersection.  A
    vertex can only be inside the other polygon if it is inside its MBR, so
    each linear boundary scan is guarded by a free point-in-rect test -
    important when one polygon is a multi-thousand-vertex giant.
    """
    va = a.vertices[0]
    if b.mbr.contains_point(va):
        if stats is not None:
            stats.pip_edges += b.num_vertices
        if locate_point(va, b.vertices) is not PointLocation.OUTSIDE:
            return True
    vb = b.vertices[0]
    if not a.mbr.contains_point(vb):
        return False
    if stats is not None:
        stats.pip_edges += a.num_vertices
    return locate_point(vb, a.vertices) is not PointLocation.OUTSIDE


def software_polygons_intersect(
    a: Polygon,
    b: Polygon,
    stats: Optional[RefinementStats] = None,
    sweep_stats: Optional[SweepStats] = None,
    restrict_search_space: bool = True,
    cache: Optional[PredicateCache] = None,
) -> bool:
    """The pure-software reference test (PIP + restricted plane sweep)."""
    if stats is not None:
        stats.pairs_tested += 1
    if not a.mbr.intersects(b.mbr):
        if stats is not None:
            stats.prefilter_drops += 1
        return False
    if _point_in_polygon_step(a, b, stats):
        if stats is not None:
            stats.pip_hits += 1
            stats.positives += 1
        return True
    if stats is not None:
        stats.sw_segment_tests += 1
    result = _sweep_decision(a, b, restrict_search_space, sweep_stats, cache)
    if result and stats is not None:
        stats.positives += 1
    return result


def hybrid_polygons_intersect(
    a: Polygon,
    b: Polygon,
    hw: HardwareSegmentTest,
    stats: Optional[RefinementStats] = None,
    sweep_stats: Optional[SweepStats] = None,
    restrict_search_space: bool = True,
    cache: Optional[PredicateCache] = None,
) -> bool:
    """Algorithm 3.1: PIP, hardware filter, then software sweep.

    Produces exactly the same answers as
    :func:`software_polygons_intersect`; only the work distribution differs.
    """
    if stats is not None:
        stats.pairs_tested += 1
    window = intersection_window(a.mbr, b.mbr)
    if window is None:
        if stats is not None:
            stats.prefilter_drops += 1
        return False

    # Step 1: software point-in-polygon.
    if _point_in_polygon_step(a, b, stats):
        if stats is not None:
            stats.pip_hits += 1
            stats.positives += 1
        return True

    # Step 2: hardware segment intersection test (unless below threshold).
    hw_maybe = False
    if hw.config.use_hardware_for(a.num_vertices + b.num_vertices):
        if stats is not None:
            stats.hw_tests += 1
        verdict = hw.intersection_verdict(a, b, window)
        if verdict is HardwareVerdict.DISJOINT:
            if stats is not None:
                stats.hw_rejects += 1
            return False
        hw_maybe = True
    elif stats is not None:
        stats.threshold_bypasses += 1

    # Step 3: software segment intersection test.
    if stats is not None:
        stats.sw_segment_tests += 1
    result = _sweep_decision(a, b, restrict_search_space, sweep_stats, cache)
    if stats is not None:
        if result:
            stats.positives += 1
        elif hw_maybe:
            stats.hw_false_positives += 1
    return result
