"""Hardware-assisted within-distance test (the paper's section 3.1 extension).

The within-distance predicate ``dist(P, Q) <= D`` generalizes intersection
(``D = 0``).  The hybrid test mirrors Algorithm 3.1:

1. *MBR prefilter* - ``minDist(MBR_P, MBR_Q) > D`` proves the negative;
2. *software point-in-polygon* - containment/overlap means distance 0;
3. *hardware proximity test* - both boundaries rendered with line width and
   point caps widened to ``D`` (Equation 1) into the window of Figure 7b; no
   overlapping pixel proves the boundaries are farther apart than ``D``.
   When Equation (1) demands a pixel width beyond the device's anti-aliased
   line-width limit, the hardware test is skipped (section 4.4's fallback);
4. *software distance test* - the frontier-chain minDist with early exit.
"""

from __future__ import annotations

from typing import Optional

from ..cache import PredicateCache
from ..geometry.distance import either_contains
from ..geometry.min_dist import MinDistStats, min_boundary_distance
from ..geometry.polygon import Polygon
from .hardware_test import HardwareSegmentTest, HardwareVerdict
from .projection import distance_window
from .stats import RefinementStats


def _mindist_decision(
    a: Polygon,
    b: Polygon,
    d: float,
    mindist_stats: Optional[MinDistStats],
    cache: Optional[PredicateCache] = None,
) -> bool:
    """``minDist(boundaries) <= d``, memoized by polygon content when asked.

    The early exit at ``d`` changes the *reported* distance, never which
    side of ``d`` it falls on, so the boolean is a pure function of
    (a, b, d) and safe to memoize.  On a hit, ``mindist_stats`` receives
    nothing - the frontier walk did not run.
    """
    if cache is None:
        return (
            min_boundary_distance(a, b, early_exit_at=d, stats=mindist_stats)
            <= d
        )
    return cache.memo(
        "mindist",
        (a.digest, b.digest, float(d)),
        lambda: min_boundary_distance(
            a, b, early_exit_at=d, stats=mindist_stats
        )
        <= d,
    )


def software_within_distance(
    a: Polygon,
    b: Polygon,
    d: float,
    stats: Optional[RefinementStats] = None,
    mindist_stats: Optional[MinDistStats] = None,
    cache: Optional[PredicateCache] = None,
) -> bool:
    """The pure-software reference predicate (paper section 4.1.1).

    MBR prefilter, containment check, then frontier-chain minDist with the
    early-exit and extended-MBR optimizations.
    """
    if d < 0.0:
        raise ValueError("distance must be non-negative")
    if stats is not None:
        stats.pairs_tested += 1
    if not a.mbr.within_distance(b.mbr, d):
        if stats is not None:
            stats.prefilter_drops += 1
        return False
    if stats is not None and a.mbr.intersects(b.mbr):
        if b.mbr.contains_point(a.vertices[0]):
            stats.pip_edges += b.num_vertices
        if a.mbr.contains_point(b.vertices[0]):
            stats.pip_edges += a.num_vertices
    if a.mbr.intersects(b.mbr) and either_contains(a, b):
        if stats is not None:
            stats.pip_hits += 1
            stats.positives += 1
        return True
    if stats is not None:
        stats.sw_distance_tests += 1
    result = _mindist_decision(a, b, d, mindist_stats, cache)
    if result and stats is not None:
        stats.positives += 1
    return result


def hybrid_within_distance(
    a: Polygon,
    b: Polygon,
    d: float,
    hw: HardwareSegmentTest,
    stats: Optional[RefinementStats] = None,
    mindist_stats: Optional[MinDistStats] = None,
    cache: Optional[PredicateCache] = None,
) -> bool:
    """The hardware-assisted within-distance test.

    Same answers as :func:`software_within_distance`; the hardware filter
    only removes provably-distant pairs before minDist runs.
    """
    if d < 0.0:
        raise ValueError("distance must be non-negative")
    if stats is not None:
        stats.pairs_tested += 1
    if not a.mbr.within_distance(b.mbr, d):
        if stats is not None:
            stats.prefilter_drops += 1
        return False
    if stats is not None and a.mbr.intersects(b.mbr):
        if b.mbr.contains_point(a.vertices[0]):
            stats.pip_edges += b.num_vertices
        if a.mbr.contains_point(b.vertices[0]):
            stats.pip_edges += a.num_vertices
    if a.mbr.intersects(b.mbr) and either_contains(a, b):
        if stats is not None:
            stats.pip_hits += 1
            stats.positives += 1
        return True

    hw_maybe = False
    if hw.config.use_hardware_for(a.num_vertices + b.num_vertices):
        window = distance_window(a.mbr, b.mbr, d)
        if stats is not None:
            stats.hw_tests += 1
        verdict = hw.distance_verdict(a, b, window, d)
        if verdict is HardwareVerdict.DISJOINT:
            if stats is not None:
                stats.hw_rejects += 1
            return False
        if verdict is HardwareVerdict.UNSUPPORTED:
            if stats is not None:
                stats.width_limit_fallbacks += 1
        else:
            hw_maybe = True
    elif stats is not None:
        stats.threshold_bypasses += 1

    if stats is not None:
        stats.sw_distance_tests += 1
    result = _mindist_decision(a, b, d, mindist_stats, cache)
    if stats is not None:
        if result:
            stats.positives += 1
        elif hw_maybe:
            stats.hw_false_positives += 1
    return result
