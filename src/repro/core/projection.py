"""Projection strategies: choosing the data-space window to render.

Section 3.2 / Figure 7 of the paper: the choice of which region to project
onto the (tiny) rendering window has a large performance impact, because it
determines both the effective resolution of the test and how many edges the
hardware must process.

* Intersection tests project the *intersection of the two MBRs* (Figure 7a):
  every boundary crossing necessarily lies there, so nothing is lost, and
  the window resolution is spent entirely on the region that matters.
* Distance tests project the *expanded MBR of the smaller object*
  (Figure 7b): the D-neighborhood of the smaller boundary is where any
  within-D witness pair must put its smaller-object endpoint.
* The naive alternative (projecting the union of both MBRs) is provided for
  the projection ablation benchmark.
"""

from __future__ import annotations

from typing import Optional

from ..geometry.rect import Rect


def intersection_window(mbr_a: Rect, mbr_b: Rect) -> Optional[Rect]:
    """Figure 7a: the common region of the two MBRs, or None when disjoint.

    The window may be degenerate (zero width and/or height) when the MBRs
    merely touch; the pipeline handles degenerate windows by mapping the
    region to a single pixel, which keeps the test conservative.
    """
    return mbr_a.intersection(mbr_b)


def distance_window(mbr_a: Rect, mbr_b: Rect, d: float) -> Rect:
    """Figure 7b: the MBR of the smaller object, expanded by ``d`` per side.

    "Smaller" is by MBR area, matching the paper's intent of maximizing
    window-resolution utilization.  Any pair of boundary points within
    distance ``d`` has its smaller-object endpoint inside the un-expanded
    MBR and its other endpoint within ``d`` of it, hence inside the expanded
    window - so rendering both boundaries into this window preserves every
    witness.
    """
    if d < 0.0:
        raise ValueError("distance must be non-negative")
    smaller = mbr_a if mbr_a.area <= mbr_b.area else mbr_b
    return smaller.expand(d)


def union_window(mbr_a: Rect, mbr_b: Rect, d: float = 0.0) -> Rect:
    """The naive full-scene window (both MBRs, plus slack ``d``).

    Used only by the projection ablation: it wastes window resolution on
    regions that cannot contain a witness, which degrades the hardware
    filter's selectivity exactly as section 3.2 warns.
    """
    u = mbr_a.union(mbr_b)
    return u.expand(d) if d > 0.0 else u
