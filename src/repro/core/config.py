"""Configuration of the hardware-assisted refinement step.

The three knobs the paper's evaluation sweeps:

* ``resolution`` - the rendering window is ``resolution x resolution``
  pixels (Figures 11, 12, 15 sweep 1..32; section 5 recommends 8x8 as the
  balance point on their platform);
* ``sw_threshold`` - polygon pairs with ``n + m <= sw_threshold`` vertices
  skip the hardware test entirely (section 4.3, Figure 13);
* the device limits - in particular the maximum anti-aliased line width
  (10 px on the paper's platform), beyond which the distance test reverts
  to software (section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..cache.config import CacheConfig, default_cache_config
from ..gpu.raster_vector import RASTER_BACKENDS
from ..gpu.state import DeviceLimits

#: Accumulated gray level that marks a pixel touched by both polygons.  Both
#: renders use color 0.5, so touched-by-both pixels hold exactly 1.0; the
#: threshold sits safely between 0.5 and 1.0 to be robust to float32
#: accumulation.
OVERLAP_THRESHOLD = 0.75


#: The overlap-search implementations of the paper's section 3: "there are
#: a number of ways to implement this strategy ... using hardware blending,
#: logical operations, depth buffer, and stencil buffer" (Hoff et al.),
#: plus the accumulation-buffer variant Algorithm 3.1 itself uses.
OVERLAP_METHODS = ("accum", "blend", "logic", "depth", "stencil")


@dataclass(frozen=True)
class HardwareConfig:
    """Parameters of the hardware-assisted tests."""

    resolution: int = 8
    sw_threshold: int = 0
    #: Which buffer mechanism detects overlapping pixels (OVERLAP_METHODS).
    method: str = "accum"
    #: How the within-distance test renders proximity: "lines" widens the
    #: anti-aliased lines per Equation (1) (the paper's published approach,
    #: subject to the device line-width limit), "field" renders thin
    #: boundaries and evaluates a distance field - the distance-insensitive
    #: approach the paper's section 5 announces as future work.
    distance_mode: str = "lines"
    limits: DeviceLimits = field(default_factory=DeviceLimits)
    #: Upper bound on pair tests packed into one tiled-refinement atlas
    #: submission (:class:`~repro.gpu.tiled.TiledPipeline`); the effective
    #: capacity is also bounded by the device viewport limit.
    batch_tiles: int = 256
    #: Which basic-rule rasterizers the pipeline runs: ``"vector"`` (NumPy
    #: whole-draw-call kernels, the default) or ``"reference"`` (the
    #: retained pure-Python spec loops).  Bit-identical results either way;
    #: the reference backend exists for property tests, the vectorization
    #: benchmark gate, and debugging.
    raster_backend: str = "vector"
    #: Memoization layers (:mod:`repro.cache`).  ``None`` means "use the
    #: process default at engine construction time"
    #: (:func:`~repro.cache.config.default_cache_config`, all-off unless a
    #: run opts in); callers needing a pinned behavior pass an explicit
    #: :class:`~repro.cache.config.CacheConfig` - see :meth:`resolved_cache`.
    cache: Optional[CacheConfig] = None

    def __post_init__(self) -> None:
        if self.method not in OVERLAP_METHODS:
            raise ValueError(
                f"unknown overlap method {self.method!r}; "
                f"choose from {OVERLAP_METHODS}"
            )
        if self.distance_mode not in ("lines", "field"):
            raise ValueError(
                f"unknown distance mode {self.distance_mode!r}; "
                "choose 'lines' or 'field'"
            )
        if self.resolution < 1:
            raise ValueError(f"resolution must be >= 1, got {self.resolution}")
        if self.resolution > self.limits.max_viewport:
            raise ValueError(
                f"resolution {self.resolution} exceeds device viewport limit "
                f"{self.limits.max_viewport}"
            )
        if self.raster_backend not in RASTER_BACKENDS:
            raise ValueError(
                f"unknown raster backend {self.raster_backend!r}; "
                f"choose from {RASTER_BACKENDS}"
            )
        if self.sw_threshold < 0:
            raise ValueError(f"sw_threshold must be >= 0, got {self.sw_threshold}")
        if self.batch_tiles < 1:
            raise ValueError(f"batch_tiles must be >= 1, got {self.batch_tiles}")

    def use_hardware_for(self, total_vertices: int) -> bool:
        """Section 4.3: hardware only pays off above the software threshold."""
        return total_vertices > self.sw_threshold

    def resolved_cache(self) -> CacheConfig:
        """The effective cache configuration for engines built from this.

        The process default is read here, once per construction site, so a
        worker rebuilt from a pickled resolved config can never disagree
        with its coordinator.
        """
        return self.cache if self.cache is not None else default_cache_config()
