"""The hardware segment intersection / proximity test.

This module implements step 2 of Algorithm 3.1 - the rendering-based filter
at the heart of the paper - against the simulated pipeline:

    2.1  enable anti-aliasing
    2.2  clear the color buffer and the accumulation buffer
    2.3  render the edges of the first polygon with color 0.5
    2.4  copy the color buffer into the accumulation buffer
    2.5  render the edges of the second polygon with color 0.5
    2.6  copy the color buffer into the accumulation buffer
    2.7  load the accumulation buffer back into the color buffer
    2.8  report whether color 1.0 appears anywhere

(The color buffer is cleared between the two renders so the accumulation
holds ``render(A) + render(B)``; within one render, overlapping edges of the
same polygon write 0.5 idempotently because blending is disabled.)

Correctness rests on the conservative anti-aliased line footprint: every
pixel whose cell the (widened) segment touches is colored, so two
intersecting boundaries always share at least one pixel, and a negative
answer is proof of disjointness.  The same machinery widened to the query
distance ``D`` (line width and point caps from Equation 1) yields the
distance filter; when the required width exceeds the device's anti-aliased
line-width limit, the test reports "unsupported" and the caller falls back
to software (section 4.4).
"""

from __future__ import annotations

import math
import time
from enum import Enum
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..cache import CacheBundle
from ..geometry.polygon import Polygon
from ..geometry.rect import Rect
from ..gpu.pipeline import GraphicsPipeline, uniform_window_scale
from ..gpu.state import DEFAULT_AA_LINE_WIDTH, EDGE_COLOR
from ..gpu.tiled import TiledPipeline
from ..obs.metrics import MetricsRegistry, current_registry
from .config import OVERLAP_THRESHOLD, HardwareConfig

#: One batched test: the two polygons and the projection window to render.
PairWindow = Tuple[Polygon, Polygon, Rect]


class HardwareVerdict(Enum):
    """Outcome of a hardware test."""

    #: No pixel was touched by both boundaries: the polygons' boundaries are
    #: provably disjoint (or provably farther apart than D).
    DISJOINT = "disjoint"
    #: Overlapping pixels exist: the boundaries *may* intersect (or may be
    #: within D); the software test must decide.
    MAYBE = "maybe"
    #: The test could not run within device limits (line width too large);
    #: the caller must use the software path.
    UNSUPPORTED = "unsupported"


class HardwareSegmentTest:
    """A reusable hardware tester bound to one rendering resolution.

    One :class:`~repro.gpu.pipeline.GraphicsPipeline` (one frame buffer) is
    allocated per instance and reused across all pairwise tests of a query,
    mirroring how the paper's implementation keeps a single OpenGL context.
    """

    def __init__(self, config: Optional[HardwareConfig] = None) -> None:
        self.config = config if config is not None else HardwareConfig()
        self.pipeline = GraphicsPipeline(
            self.config.resolution,
            limits=self.config.limits,
            raster_backend=self.config.raster_backend,
        )
        st = self.pipeline.state
        st.antialias = True  # step 2.1
        st.blend = False
        st.color = EDGE_COLOR
        self._tiled: Optional[TiledPipeline] = None
        #: Memoization layers (:mod:`repro.cache`), resolved once here so a
        #: tester's behavior is pinned at construction.  The verdict cache
        #: short-circuits whole tests; the render cache (installed on the
        #: pipeline) reuses per-boundary coverage masks inside a test.
        self.caches = CacheBundle(self.config.resolved_cache())
        self.verdict_cache = self.caches.verdict
        self.pipeline.render_cache = self.caches.render

    @property
    def tiled(self) -> TiledPipeline:
        """The atlas batching layer, created on first batched call.

        Shares the base pipeline's cost counters, so batched and per-pair
        tests report into one stream.
        """
        if self._tiled is None:
            self._tiled = TiledPipeline(
                self.pipeline, max_tiles=self.config.batch_tiles
            )
        return self._tiled

    # -- metrics ----------------------------------------------------------

    def _observe_test(
        self,
        registry: MetricsRegistry,
        op: str,
        method: str,
        verdict: HardwareVerdict,
        a: Polygon,
        b: Polygon,
        elapsed_s: Optional[float] = None,
    ) -> None:
        """Record one per-pair test into the installed registry.

        Per-pair families (``hw_verdicts``, ``hw_test_edges``) are additive
        over pairs, so serial, batched, and shard-merged runs of the same
        workload report identical totals.  The duration histogram is the
        per-test cost distribution Figure 13's threshold argument is about;
        it is only fed when a render actually ran for this single pair
        (``elapsed_s`` is None for UNSUPPORTED short-circuits and for pairs
        inside an atlas batch, whose cost is shared and lands in
        ``hw_batch_duration_s`` instead).
        """
        if elapsed_s is not None:
            registry.histogram(
                "hw_test_duration_s", op=op, method=method
            ).observe(elapsed_s)
        registry.counter("hw_verdicts", op=op, verdict=verdict.value).inc()
        registry.histogram("hw_test_edges", op=op).observe(
            a.num_vertices + b.num_vertices
        )

    # -- public API -------------------------------------------------------

    def intersection_verdict(
        self, a: Polygon, b: Polygon, window: Rect
    ) -> HardwareVerdict:
        """Hardware segment intersection test over ``window`` (Figure 7a).

        Never returns UNSUPPORTED: the default sqrt(2) line width is always
        within device limits.  With the verdict cache enabled, a repeated
        (pair, window) test replays its memoized verdict without rendering;
        the ``hw_verdicts`` / ``hw_test_edges`` accounting still runs per
        test (only the per-render duration histogram is skipped, as for
        batched pairs), so cached and uncached runs report identical
        per-pair totals.
        """
        registry = current_registry()
        cache = self.verdict_cache
        key = None
        if cache is not None:
            key = cache.key(
                "intersect", self.config.method, a, b, window, 0.0,
                self.config.resolution,
            )
            verdict = cache.lookup("intersect", key)
            if verdict is not None:
                if registry is not None:
                    self._observe_test(
                        registry, "intersect", self.config.method, verdict, a, b
                    )
                return verdict
        start = time.perf_counter() if registry is not None else 0.0
        verdict = self._render_and_search(
            a, b, window, line_width_px=DEFAULT_AA_LINE_WIDTH, cap_points=False
        )
        if registry is not None:
            self._observe_test(
                registry,
                "intersect",
                self.config.method,
                verdict,
                a,
                b,
                time.perf_counter() - start,
            )
        if key is not None:
            cache.store("intersect", key, verdict)
        return verdict

    def distance_verdict(
        self, a: Polygon, b: Polygon, window: Rect, d: float
    ) -> HardwareVerdict:
        """Hardware within-distance test at distance ``d``.

        In the default ``"lines"`` mode, each polygon's edges are rendered
        with a total width of ``d`` in data units (``d/2`` per side,
        Equation 1) plus matching end-point caps, so overlapping pixels
        exist whenever the boundaries come within ``d``; the verdict is
        UNSUPPORTED when the pixel width exceeds the device limit (section
        4.4).  In ``"field"`` mode the distance-insensitive test is used
        instead and UNSUPPORTED never occurs.
        """
        if d < 0.0:
            raise ValueError("distance must be non-negative")
        # Delegating paths record in the delegate, never here: one test,
        # one ``hw_verdicts`` increment, whichever entry point ran it.
        if self.config.distance_mode == "field" and d > 0.0:
            return self.distance_field_verdict(a, b, window, d)
        if d == 0.0:
            return self.intersection_verdict(a, b, window)
        registry = current_registry()
        self.pipeline.set_data_window(window)
        width_px = float(self.pipeline.line_width_for_distance(d))
        limits = self.config.limits
        if not (
            limits.supports_line_width(width_px)
            and limits.supports_point_size(width_px)
        ):
            if registry is not None:
                registry.counter(
                    "hw_line_width_overflow",
                    op="within_distance",
                    method=self.config.method,
                ).inc()
                self._observe_test(
                    registry,
                    "within_distance",
                    self.config.method,
                    HardwareVerdict.UNSUPPORTED,
                    a,
                    b,
                )
            return HardwareVerdict.UNSUPPORTED
        # Only supported tests reach the cache: UNSUPPORTED is decided by
        # the width comparison above with no rendering to save, and caching
        # it would fork the ``hw_line_width_overflow`` accounting.
        cache = self.verdict_cache
        key = None
        if cache is not None:
            key = cache.key(
                "within_distance", self.config.method, a, b, window, d,
                self.config.resolution,
            )
            verdict = cache.lookup("within_distance", key)
            if verdict is not None:
                if registry is not None:
                    self._observe_test(
                        registry, "within_distance", self.config.method,
                        verdict, a, b,
                    )
                return verdict
        start = time.perf_counter() if registry is not None else 0.0
        verdict = self._render_and_search(
            a, b, window, line_width_px=width_px, cap_points=True
        )
        if registry is not None:
            self._observe_test(
                registry,
                "within_distance",
                self.config.method,
                verdict,
                a,
                b,
                time.perf_counter() - start,
            )
        if key is not None:
            cache.store("within_distance", key, verdict)
        return verdict

    def intersection_verdicts_batch(
        self, pairs: Sequence[PairWindow]
    ) -> List[HardwareVerdict]:
        """Batched hardware segment intersection tests: K verdicts at once.

        Packs every pair's window as one tile of the atlas
        (:class:`~repro.gpu.tiled.TiledPipeline`), rasterizes all first
        boundaries in one bulk draw call, all second boundaries in a
        second, and reduces per tile.  Verdicts are bit-identical to
        calling :meth:`intersection_verdict` per pair, for every
        configured overlap method - all of section 3's implementations
        reduce to "some pixel covered by both boundaries", which is what
        the per-tile Minmax detects.  Never returns UNSUPPORTED.

        With the verdict cache enabled, previously-decided pairs replay
        their verdicts, and duplicate keys *within* the batch render once
        (the later occurrences become followers of the first); only the
        remaining misses reach the atlas.  Per-pair accounting is
        unchanged, so the verdict list and RefinementStats stay
        bit-identical to the cache-off run.
        """
        pairs = list(pairs)
        if not pairs:
            return []
        registry = current_registry()
        start = time.perf_counter() if registry is not None else 0.0
        cache = self.verdict_cache
        verdicts: List[Optional[HardwareVerdict]] = [None] * len(pairs)
        if cache is not None:
            keys: List[object] = [None] * len(pairs)
            render_idx: List[int] = []
            leader_of: dict = {}
            followers: dict = {}
            for k, (a, b, window) in enumerate(pairs):
                key = cache.key(
                    "intersect", self.config.method, a, b, window, 0.0,
                    self.config.resolution,
                )
                keys[k] = key
                verdict = cache.lookup("intersect", key)
                if verdict is not None:
                    verdicts[k] = verdict
                    continue
                leader = leader_of.get(key)
                if leader is None:
                    leader_of[key] = k
                    render_idx.append(k)
                else:
                    followers.setdefault(leader, []).append(k)
        else:
            render_idx = list(range(len(pairs)))
        if render_idx:
            flags = self.tiled.overlap_flags(
                [pairs[k][0].edges_array for k in render_idx],
                [pairs[k][1].edges_array for k in render_idx],
                [pairs[k][2] for k in render_idx],
                widths_px=DEFAULT_AA_LINE_WIDTH,
                cap_points=False,
                threshold=OVERLAP_THRESHOLD,
            )
            for k, f in zip(render_idx, flags):
                verdict = (
                    HardwareVerdict.MAYBE if f else HardwareVerdict.DISJOINT
                )
                verdicts[k] = verdict
                if cache is not None:
                    cache.store("intersect", keys[k], verdict)
                    for j in followers.get(k, ()):
                        verdicts[j] = verdict
        assert all(v is not None for v in verdicts)
        if registry is not None:
            registry.histogram("hw_batch_duration_s", op="intersect").observe(
                time.perf_counter() - start
            )
            for (a, b, _), verdict in zip(pairs, verdicts):
                self._observe_test(
                    registry, "intersect", self.config.method, verdict, a, b
                )
        return verdicts  # type: ignore[return-value]

    def distance_verdicts_batch(
        self, pairs: Sequence[PairWindow], d: float
    ) -> List[HardwareVerdict]:
        """Batched within-distance tests at distance ``d``.

        Each pair's projection assigns its own Equation (1) line width;
        pairs whose width exceeds the device limit get UNSUPPORTED (they
        never reach the atlas), the rest render in one batch with per-tile
        widths and end-point caps.  Verdicts are bit-identical to
        per-pair :meth:`distance_verdict` calls.  ``"field"`` mode has no
        widened lines to batch and runs the distance-insensitive test per
        pair.  With the verdict cache enabled, supported pairs replay
        cached verdicts and within-batch duplicates render once, exactly
        as in :meth:`intersection_verdicts_batch`.
        """
        if d < 0.0:
            raise ValueError("distance must be non-negative")
        pairs = list(pairs)
        if not pairs:
            return []
        # As in distance_verdict, delegating paths record in the delegate.
        if d == 0.0:
            return self.intersection_verdicts_batch(pairs)
        if self.config.distance_mode == "field":
            return [
                self.distance_field_verdict(a, b, w, d) for a, b, w in pairs
            ]
        registry = current_registry()
        start = time.perf_counter() if registry is not None else 0.0
        cache = self.verdict_cache
        verdicts: List[Optional[HardwareVerdict]] = [None] * len(pairs)
        keys: List[object] = [None] * len(pairs)
        render_idx: List[int] = []
        widths: List[float] = []
        leader_of: dict = {}
        followers: dict = {}
        limits = self.config.limits
        vw, vh = self.pipeline.width, self.pipeline.height
        for k, (a, b, window) in enumerate(pairs):
            scale = uniform_window_scale(vw, vh, window)
            width_px = float(max(1, math.ceil(d * scale)))
            if not (
                limits.supports_line_width(width_px)
                and limits.supports_point_size(width_px)
            ):
                # Decided by the width comparison alone - never cached, as
                # in distance_verdict, so hw_line_width_overflow stays on
                # one path.
                verdicts[k] = HardwareVerdict.UNSUPPORTED
                if registry is not None:
                    registry.counter(
                        "hw_line_width_overflow",
                        op="within_distance",
                        method=self.config.method,
                    ).inc()
                continue
            if cache is not None:
                key = cache.key(
                    "within_distance", self.config.method, a, b, window, d,
                    self.config.resolution,
                )
                keys[k] = key
                verdict = cache.lookup("within_distance", key)
                if verdict is not None:
                    verdicts[k] = verdict
                    continue
                leader = leader_of.get(key)
                if leader is not None:
                    # Duplicate key within the batch: the width is a pure
                    # function of (window, d), so sharing the leader's
                    # verdict is exact.
                    followers.setdefault(leader, []).append(k)
                    continue
                leader_of[key] = k
            render_idx.append(k)
            widths.append(width_px)
        if render_idx:
            flags = self.tiled.overlap_flags(
                [pairs[k][0].edges_array for k in render_idx],
                [pairs[k][1].edges_array for k in render_idx],
                [pairs[k][2] for k in render_idx],
                widths_px=np.asarray(widths, dtype=np.float64),
                cap_points=True,
                threshold=OVERLAP_THRESHOLD,
            )
            for k, f in zip(render_idx, flags):
                verdict = (
                    HardwareVerdict.MAYBE if f else HardwareVerdict.DISJOINT
                )
                verdicts[k] = verdict
                if cache is not None:
                    cache.store("within_distance", keys[k], verdict)
                    for j in followers.get(k, ()):
                        verdicts[j] = verdict
        assert all(v is not None for v in verdicts)
        if registry is not None:
            registry.histogram(
                "hw_batch_duration_s", op="within_distance"
            ).observe(time.perf_counter() - start)
            for (a, b, _), verdict in zip(pairs, verdicts):
                self._observe_test(
                    registry, "within_distance", self.config.method, verdict, a, b
                )
        return verdicts  # type: ignore[return-value]

    def distance_field_verdict(
        self, a: Polygon, b: Polygon, window: Rect, d: float
    ) -> HardwareVerdict:
        """Distance-insensitive proximity test (section 5's future work).

        Renders both boundaries once at the default sqrt(2) line width,
        computes the distance field of A's coverage, and compares the
        minimum field value over B's coverage against ``d`` converted to
        pixels (plus the cell-center slack).  Never UNSUPPORTED: no widened
        lines are drawn, so the device line-width limit is irrelevant, and
        the rendering cost does not grow with ``d``.
        """
        if d < 0.0:
            raise ValueError("distance must be non-negative")
        registry = current_registry()
        cache = self.verdict_cache
        key = None
        if cache is not None:
            key = cache.key(
                "within_distance", "field", a, b, window, d,
                self.config.resolution,
            )
            verdict = cache.lookup("within_distance", key)
            if verdict is not None:
                if registry is not None:
                    self._observe_test(
                        registry, "within_distance", "field", verdict, a, b
                    )
                return verdict
        start = time.perf_counter() if registry is not None else 0.0
        verdict = self._distance_field_impl(a, b, window, d)
        if registry is not None:
            self._observe_test(
                registry,
                "within_distance",
                "field",
                verdict,
                a,
                b,
                time.perf_counter() - start,
            )
        if key is not None:
            cache.store("within_distance", key, verdict)
        return verdict

    def _distance_field_impl(
        self, a: Polygon, b: Polygon, window: Rect, d: float
    ) -> HardwareVerdict:
        from ..gpu.distance_field import CENTER_DISTANCE_SLACK

        pl = self.pipeline
        pl.set_data_window(window)
        st = pl.state
        st.line_width = DEFAULT_AA_LINE_WIDTH
        st.point_size = DEFAULT_AA_LINE_WIDTH
        st.cap_points = False
        st.reset_fragment_ops()
        mask_a = pl.render_coverage_mask(a.edges_array, key=a.digest)
        if not mask_a.any():
            return HardwareVerdict.DISJOINT
        mask_b = pl.render_coverage_mask(b.edges_array, key=b.digest)
        if not mask_b.any():
            return HardwareVerdict.DISJOINT
        field = pl.compute_distance_field(mask_a)
        min_px = float(field[mask_b].min())
        if min_px > pl.distance_to_pixels(d) + CENTER_DISTANCE_SLACK:
            return HardwareVerdict.DISJOINT
        return HardwareVerdict.MAYBE

    def required_line_width(self, window: Rect, d: float) -> int:
        """Pixel width Equation (1) assigns to distance ``d`` under ``window``."""
        self.pipeline.set_data_window(window)
        return self.pipeline.line_width_for_distance(d)

    # -- render-and-search, in the five variants of section 3 ------------------

    def _render_and_search(
        self,
        a: Polygon,
        b: Polygon,
        window: Rect,
        line_width_px: float,
        cap_points: bool,
        search: Optional[Callable[["HardwareSegmentTest", Polygon, Polygon], bool]] = None,
    ) -> HardwareVerdict:
        pl = self.pipeline
        pl.set_data_window(window)
        st = pl.state
        saved = (st.line_width, st.point_size, st.cap_points)
        st.line_width = line_width_px
        st.point_size = line_width_px
        st.cap_points = cap_points
        st.reset_fragment_ops()
        if search is None:
            search = self._SEARCHES[self.config.method]
        try:
            overlap = search(self, a, b)
        finally:
            # Restore the full raster state, not just the fragment ops: a
            # widened distance test must not leak its line width, point
            # size, or end-point caps into the shared pipeline (direct
            # GraphicsPipeline users - voronoi, distance_field - would
            # silently inherit the widened footprint).
            st.line_width, st.point_size, st.cap_points = saved
            st.reset_fragment_ops()
            st.color = EDGE_COLOR
        return HardwareVerdict.MAYBE if overlap else HardwareVerdict.DISJOINT

    def _search_accum(self, a: Polygon, b: Polygon) -> bool:
        """Algorithm 3.1 steps 2.2-2.8: two renders added in the
        accumulation buffer; overlap pixels reach 1.0."""
        pl = self.pipeline
        pl.state.color = EDGE_COLOR
        pl.clear_color()  # step 2.2
        pl.clear_accum()
        pl.draw_edges_array(a.edges_array, key=a.digest)  # step 2.3
        pl.accum_add()  # step 2.4
        pl.clear_color()
        pl.draw_edges_array(b.edges_array, key=b.digest)  # step 2.5
        pl.accum_add()  # step 2.6
        pl.accum_return()  # step 2.7
        _, max_value = pl.minmax("color")  # step 2.8 via hardware Minmax
        return max_value >= OVERLAP_THRESHOLD

    def _search_blend(self, a: Polygon, b: Polygon) -> bool:
        """Additive blending: both renders add 0.5 into the color buffer
        directly; overlap pixels reach 1.0 with no accumulation transfers."""
        pl = self.pipeline
        st = pl.state
        st.color = EDGE_COLOR
        st.blend = True
        pl.clear_color()
        pl.draw_edges_array(a.edges_array, key=a.digest)
        pl.draw_edges_array(b.edges_array, key=b.digest)
        _, max_value = pl.minmax("color")
        return max_value >= OVERLAP_THRESHOLD

    def _search_logic(self, a: Polygon, b: Polygon) -> bool:
        """Logical operations: polygon A ORs bit 1, polygon B ORs bit 2;
        overlap pixels hold 0b11 = 3."""
        pl = self.pipeline
        st = pl.state
        st.logic_op = "or"
        pl.clear_color()
        st.color = 1.0
        pl.draw_edges_array(a.edges_array, key=a.digest)
        st.color = 2.0
        pl.draw_edges_array(b.edges_array, key=b.digest)
        _, max_value = pl.minmax("color")
        return max_value >= 3.0

    def _search_depth(self, a: Polygon, b: Polygon) -> bool:
        """Depth buffer (RECODE-style): pass 1 marks A's pixels at a known
        depth with color writes off; pass 2 renders B with GL_EQUAL so only
        pixels A touched survive to write color."""
        pl = self.pipeline
        st = pl.state
        pl.clear_color()
        pl.clear_depth(1.0)
        st.color_write = False
        st.depth_write = True
        st.depth_value = 0.5
        pl.draw_edges_array(a.edges_array, key=a.digest)
        st.color_write = True
        st.depth_write = False
        st.depth_test = "equal"
        st.color = 1.0
        pl.draw_edges_array(b.edges_array, key=b.digest)
        _, max_value = pl.minmax("color")
        return max_value >= 1.0

    def _search_stencil(self, a: Polygon, b: Polygon) -> bool:
        """Stencil buffer: both renders increment the stencil of covered
        pixels (color writes off); overlap pixels count 2."""
        pl = self.pipeline
        st = pl.state
        pl.clear_stencil(0)
        st.color_write = False
        st.stencil_op = "incr"
        pl.draw_edges_array(a.edges_array, key=a.digest)
        pl.draw_edges_array(b.edges_array, key=b.digest)
        _, max_value = pl.minmax("stencil")
        return max_value >= 2.0

    _SEARCHES = {
        "accum": _search_accum,
        "blend": _search_blend,
        "logic": _search_logic,
        "depth": _search_depth,
        "stencil": _search_stencil,
    }

    def overlap_image(self, a: Polygon, b: Polygon, window: Rect):
        """Debug/visualization helper: the accumulated image as an array.

        Runs the intersection rendering and returns the full readback (the
        expensive path the Minmax function exists to avoid; also used by the
        Minmax-vs-readback ablation).

        The accumulation rendering is forced regardless of the configured
        overlap method: only Algorithm 3.1's accumulation path leaves the
        documented 0.5/1.0 image in the color buffer.  The stencil method
        never writes color at all, and the logic/depth methods use different
        encodings, so dispatching through ``config.method`` here would
        return a stale or mis-encoded image.
        """
        self._render_and_search(
            a,
            b,
            window,
            line_width_px=DEFAULT_AA_LINE_WIDTH,
            cap_points=False,
            search=HardwareSegmentTest._search_accum,
        )
        return self.pipeline.read_pixels("color")
