"""Counters describing how refinement work was distributed.

The paper's analysis hinges on *where* pairs get resolved: by the linear
point-in-polygon step, by the cheap hardware filter, or by the expensive
software segment/distance test.  These counters let tests assert the
filtering behaviour and let benchmarks report it.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class RefinementStats:
    """Outcome counters for a batch of pairwise refinement tests."""

    pairs_tested: int = 0
    #: Pairs rejected before any geometry test ran: the refinement-local
    #: MBR/locate prefilter failed (no shared window, or - for containment -
    #: the candidate MBR/anchor vertex already disproved containment).
    prefilter_drops: int = 0
    #: Resolved positively by the software point-in-polygon step
    #: (Algorithm 3.1 step 1): overlap or containment witnessed by a vertex.
    pip_hits: int = 0
    #: Polygon edges visited by point-in-polygon scans (for cost modeling).
    pip_edges: int = 0
    #: Pairs that skipped the hardware test because ``n + m <= sw_threshold``.
    threshold_bypasses: int = 0
    #: Hardware tests executed.
    hw_tests: int = 0
    #: Pairs the hardware test proved negative (filtered away).
    hw_rejects: int = 0
    #: Distance tests that exceeded the device line-width limit and fell
    #: back to software (section 4.4).
    width_limit_fallbacks: int = 0
    #: Software segment-intersection sweeps executed (step 3).
    sw_segment_tests: int = 0
    #: Software minDist computations executed.
    sw_distance_tests: int = 0
    #: Hardware MAYBE verdicts the exact software test then answered the
    #: other way - the filter's false positives (a conservative filter has
    #: no false negatives, so this is its entire error budget).
    hw_false_positives: int = 0
    #: Pairs answered positive overall.
    positives: int = 0

    def merge(self, other: "RefinementStats") -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def reset(self) -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)

    @property
    def hw_filter_rate(self) -> float:
        """Fraction of executed hardware tests that proved disjointness."""
        return self.hw_rejects / self.hw_tests if self.hw_tests else 0.0
